"""A live weak-instance query service.

The one-shot functions of :mod:`repro.weak.representative` rebuild and
re-chase the whole tableau ``I(p)`` on every query — fine for a single
question, hopeless for serving traffic.  :class:`WeakInstanceService`
keeps the chased representative instance **live** across updates:

* **Inserts** are validated by a wrapped
  :class:`~repro.core.maintenance.MaintenanceChecker` and then chased
  *incrementally*: the new row is appended to the already-chased
  tableau and only the dirty-row worklist it seeds is driven to
  fixpoint (:class:`~repro.chase.engine.IncrementalFDChaser`), reusing
  the engine's per-FD partitions and the tableau's occurrence/value
  indexes.  Cost per insert is the cascade the tuple actually
  triggers, not a rescan of the state.
* **Deletes** are always safe for satisfaction (any weak instance for
  ``p`` is one for ``p`` minus a tuple) but can retract derived facts.
  The paper gives no locality result for them, so the first service
  simply invalidated the live tableau and paid a from-scratch rebuild
  on the next query.  Deletes are now *provenance-scoped*: the
  tableau's merge log knows exactly which unions the deleted row's
  merges fed (Gupta–Mumick-style delete-and-rederive), so the service
  retracts the one row, dissolves only the tainted symbol classes, and
  re-runs the incremental fixpoint over just the affected rows
  (:meth:`~repro.chase.engine.IncrementalFDChaser.rechase_scoped`).
  Cost per delete is the footprint the row actually had.  When the
  affected set exceeds ``delete_rebuild_fraction`` of the live rows —
  an adversarial delete whose footprint approaches the tableau — the
  service falls back to the old invalidate-and-rebuild path, so the
  worst case never exceeds one rebuild.  ``scoped_deletes=False``
  restores the old behaviour wholesale — and skips the merge log
  entirely, so a service that will never scope a delete (the delete
  benchmark's baseline, the one-shot helpers in
  :mod:`repro.weak.representative`) pays nothing for the machinery.
* **Queries** (:meth:`window`, :meth:`derivable`) read the live
  tableau's total projection through a per-``AttributeSet`` cache.
  Every entry belongs to the current tableau version: any version bump
  prunes the superseded entries (no dead-version accumulation over
  long streams), and the cache is additionally LRU-bounded by
  ``window_cache_limit``.  A scoped delete invalidates **selectively**:
  a cached window survives when none of its attributes touch a
  dissolved class's columns and the retracted row's projection is
  either non-total on it or still produced by a surviving row.

* **Cold loads and rebuilds** go through the column-major **bulk
  chase kernel** (:mod:`repro.chase.bulk`) by default
  (``bulk_loads=True``): the tableau is built by per-column batch
  ingest and chased set-at-a-time, with the merge log batch-recorded
  when scoped deletes want one, then handed to the incremental driver
  with its per-FD partitions pre-seeded.  Every from-scratch path —
  first query, delete fallback, compaction, a poisoned tableau's
  recovery — pays the kernel price instead of the row-at-a-time
  seeding pass (``stats.bulk_loads`` counts them).

All of that tableau lifecycle — build, incremental drive, scoped
retraction, window caching — lives in :class:`LiveTableau`, the seam
between "the backing state changed" and "serve a window".
:class:`WeakInstanceService` wires one global :class:`LiveTableau` to
one global :class:`~repro.core.maintenance.MaintenanceChecker`; the
independence-aware sharded service
(:class:`repro.weak.sharded.ShardedWeakInstanceService`) reuses the
same seam per scheme (one tiny :class:`LiveTableau` per shard, chased
under the scheme's maintenance cover ``Hi``) and once more for its
lazily-synced global composer.

Validation semantics follow :func:`repro.weak.representative.window`:
consistency means *a weak instance for the FDs exists*, decided by the
FD-only chase — which coincides with full ``F ∪ {*D}`` satisfaction
whenever every FD is embedded in the schema (Lemma 4), the paper's
setting.  For non-embedded FDs this is deliberately weaker than
``MaintenanceChecker(method="chase").check_insert`` (which also chases
the schema's join dependency); use the checker directly when you need
the full ``Σ`` maintenance test.  With ``method="local"`` (independent
schemas, Theorem 3) insert validation is O(1) per embedded-cover FD;
with ``method="chase"`` the incremental chase itself is the validator
— a contradiction rejects the tuple and rebuilds the tableau from the
(uncommitted) state.  Both :meth:`load` paths (empty and incremental)
validate through the same FD-only chase, so acceptance never depends
on how the data was batched.

Batch entry points (:meth:`insert_many`, :meth:`window_many`,
:meth:`derivable_many`) amortize fixpoint drives and cache lookups
over a whole stream of operations.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple as PyTuple,
    Union,
)

from repro.chase.engine import ChaseResult, IncrementalFDChaser
from repro.chase.tableau import ChaseTableau, RowOrigin
from repro.core.independence import IndependenceReport
from repro.core.maintenance import InsertOutcome, MaintenanceChecker, Method
from repro.data.relations import RelationInstance, RowLike
from repro.data.states import DatabaseState
from repro.data.values import is_null
from repro.deps.fd import FD
from repro.deps.fdset import FDSet, as_fdset
from repro.exceptions import InconsistentStateError
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.schema.database import DatabaseSchema


@dataclass
class ServiceStats:
    """Operation counters (benchmark, test, and ops introspection —
    the CLI ``serve`` REPL prints these via its ``stats`` command)."""

    inserts_accepted: int = 0
    inserts_rejected: int = 0
    duplicate_inserts: int = 0
    deletes: int = 0
    rebuilds: int = 0
    incremental_chases: int = 0
    window_queries: int = 0
    window_cache_hits: int = 0
    #: deletes served by retract + scoped rechase (no rebuild)
    scoped_rechases: int = 0
    #: deletes whose affected set exceeded the fallback fraction (the
    #: live tableau was invalidated; the next query rebuilds)
    delete_fallbacks: int = 0
    #: affected-set sizes across scoped deletes (observability for the
    #: fallback heuristic)
    affected_rows_total: int = 0
    affected_rows_max: int = 0
    #: window-cache entries kept alive across scoped deletes by the
    #: selective invalidation check
    windows_retained: int = 0
    #: entries evicted by the LRU bound (not by invalidation)
    window_cache_evictions: int = 0
    #: invalidations triggered because retracted row slots outgrew the
    #: live rows (the next query rebuilds a compact tableau)
    compaction_rebuilds: int = 0
    #: from-scratch tableau builds that went through the column-major
    #: bulk chase kernel — explicit ``load()`` calls as well as the
    #: lazy rebuilds counted by ``rebuilds``, so the two counters are
    #: not subsets of each other
    bulk_loads: int = 0
    #: relational queries served (:meth:`WindowQueryAPI.query`)
    queries: int = 0
    #: queries whose normalized AST already had a physical plan
    query_plan_cache_hits: int = 0
    #: queries answered from the version-stamped result cache
    query_result_cache_hits: int = 0
    #: leaf scans whose equality filters were pushed into the
    #: tableau's per-attribute value indexes
    query_pushed_scans: int = 0

    @property
    def window_cache_misses(self) -> int:
        return self.window_queries - self.window_cache_hits

    def as_dict(self) -> Dict[str, int]:
        """Every counter, keyed by field name.

        Enumerates the *dataclass fields* (not a hand-maintained list,
        and not ``__dict__``, which would silently drop slotted or
        class-level-overridden fields), so counters added by this class
        or any subclass — the sharded service's stats extend these —
        can never be missing from the CLI ``stats`` op.
        """
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["window_cache_misses"] = self.window_cache_misses
        return d


class LiveTableau:
    """One live chased tableau with window caching and scoped deletes.

    The reusable seam between a validated backing state and served
    windows: owns the :class:`~repro.chase.tableau.ChaseTableau`, its
    persistent :class:`~repro.chase.engine.IncrementalFDChaser`, the
    ``(scheme, tuple) → row`` locators deletes use, and the
    version-disciplined window cache.  The backing state itself is
    abstracted as ``state_source`` (called on rebuild), so the same
    machinery serves

    * :class:`WeakInstanceService` — one instance over the global
      checker state,
    * each shard of the sharded service — a single-scheme schema chased
      under the scheme's maintenance cover ``Hi``, and
    * the sharded service's global composer — rebuilt or journal-fed
      from the union of the shards.

    ``stats`` is shared with the owner: this class bumps the
    tableau-lifecycle counters (``rebuilds``, ``incremental_chases``,
    cache and scoped-delete counters); the owner bumps the operation
    counters (``inserts_*``, ``deletes``, ``window_queries``).
    """

    #: default ceiling on cached windows (LRU eviction beyond it)
    DEFAULT_WINDOW_CACHE_LIMIT = 1024
    #: default rebuild-fallback threshold: a delete whose affected set
    #: exceeds this fraction of the live rows invalidates instead of
    #: rechasing, bounding the worst case at one rebuild
    DEFAULT_DELETE_REBUILD_FRACTION = 0.5

    def __init__(
        self,
        schema: DatabaseSchema,
        fds: Iterable[FD],
        state_source: Callable[[], DatabaseState],
        stats: ServiceStats,
        scoped_deletes: bool = True,
        delete_rebuild_fraction: float = DEFAULT_DELETE_REBUILD_FRACTION,
        window_cache_limit: int = DEFAULT_WINDOW_CACHE_LIMIT,
        bulk_loads: bool = True,
    ):
        self.schema = schema
        self._fd_tuple: PyTuple[FD, ...] = tuple(fds)
        self._state_source = state_source
        self.stats = stats
        self.scoped_deletes = scoped_deletes
        self.delete_rebuild_fraction = delete_rebuild_fraction
        self.window_cache_limit = window_cache_limit
        self.bulk_loads = bulk_loads
        self._tableau: Optional[ChaseTableau] = None
        self._chaser: Optional[IncrementalFDChaser] = None
        #: the last adopted driver's *static* per-FD column metadata,
        #: kept across invalidations so rebuilds skip re-deriving it —
        #: deliberately not the driver itself, which would pin the
        #: whole superseded tableau in memory
        self._chaser_template = None
        #: the last version stamp any superseded tableau handed out —
        #: the floor carried into the next rebuild's tableau so stamps
        #: stay monotone across rebuilds (a version-keyed cache can
        #: never mistake a fresh tableau's entry for a stale one)
        self._last_version: Optional[PyTuple[int, int]] = None
        self._stale = True
        # (scheme name, tuple) -> live tableau row, so a delete can
        # name the row to retract; rebuilt with the tableau
        self._row_of: Dict[PyTuple[str, object], int] = {}
        # windows of the *current* tableau version only (the single
        # version invariant is what keeps the cache bounded over long
        # streams); insertion order doubles as LRU order
        self._window_cache: Dict[AttributeSet, RelationInstance] = {}
        self._cache_version: Optional[PyTuple[int, int]] = None

    @property
    def live(self) -> bool:
        """Is the chased tableau current (no rebuild pending)?"""
        return not self._stale

    def row_count(self) -> Optional[int]:
        """Live rows of the current tableau (None while stale)."""
        return self._tableau.live_row_count() if self._tableau is not None else None

    # -- building ---------------------------------------------------------------

    def new_chaser(self, tableau: ChaseTableau) -> IncrementalFDChaser:
        """A driver for a candidate tableau, rebinding the previous
        driver's per-FD metadata when one exists."""
        return IncrementalFDChaser(
            tableau,
            self._fd_tuple,
            log_merges=self.scoped_deletes,
            _template=self._chaser_template,
        )

    def tableau_from(
        self, state: DatabaseState
    ) -> PyTuple[ChaseTableau, Dict[PyTuple[str, object], int]]:
        """``I(p)`` plus the (scheme, tuple) → row locator deletes use.

        Duplicate tuples within a relation collapse to one row (set
        semantics, like the checker), so retracting the locator's row
        really removes the tuple's entire contribution.

        With ``bulk_loads`` the rows go through the tableau's
        column-major ingest (the layout the bulk kernel wants); either
        way the fresh tableau's version stamps are floored above every
        stamp a superseded predecessor handed out.
        """
        tableau = ChaseTableau(self.schema.universe)
        floor = (
            self._tableau.version if self._tableau is not None
            else self._last_version
        )
        if floor is not None:
            tableau.offset_version_base(floor)
        if self.bulk_loads:
            from repro.chase.bulk import ingest_state

            return ingest_state(self.schema, state, tableau)
        row_of: Dict[PyTuple[str, object], int] = {}
        for scheme, relation in state:
            for t in relation:
                key = (scheme.name, t)
                if key in row_of:
                    continue
                row_of[key] = tableau.add_padded(
                    scheme.attributes, t, RowOrigin("state", scheme.name)
                )
        return tableau, row_of

    def chase_fresh(
        self, tableau: ChaseTableau
    ) -> PyTuple[Optional[IncrementalFDChaser], ChaseResult]:
        """Chase a freshly built candidate tableau to fixpoint and wrap
        it in an incremental driver.

        Eligible tableaux run the column-major bulk kernel (merge log
        batch-recorded iff scoped deletes want one) and the driver is
        seeded from the kernel's partitions — the cold-load fast path;
        everything else seeds the driver the row-at-a-time way.  On a
        contradiction the driver is withheld (``None``): the candidate
        is poisoned and must be discarded.
        """
        if self.bulk_loads:
            from repro.chase.bulk import BulkFDChaser, bulk_eligible

            if bulk_eligible(tableau):
                kernel = BulkFDChaser(
                    tableau, self._fd_tuple, log_merges=self.scoped_deletes
                )
                result = kernel.run()
                if not result.consistent:
                    return None, result
                chaser = IncrementalFDChaser(
                    tableau,
                    self._fd_tuple,
                    log_merges=self.scoped_deletes,
                    _template=self._chaser_template,
                    _handoff=kernel,
                )
                self.stats.bulk_loads += 1
                return chaser, result
        chaser = self.new_chaser(tableau)
        result = chaser.run()
        if not result.consistent:
            return None, result
        return chaser, result

    def adopt(
        self,
        tableau: ChaseTableau,
        chaser: IncrementalFDChaser,
        row_of: Dict[PyTuple[str, object], int],
    ) -> None:
        self._tableau = tableau
        self._chaser = chaser
        self._chaser_template = chaser.metadata()
        self._row_of = row_of
        self._stale = False
        # never reuse windows across tableaux: a rebuilt tableau can
        # coincidentally reproduce an old version stamp
        self._window_cache.clear()
        self._cache_version = tableau.version

    def invalidate(self) -> None:
        if self._tableau is not None:
            # remember the dying tableau's last stamp so the successor
            # can floor its own stamps above it
            self._last_version = self._tableau.version
        self._tableau = None
        self._chaser = None
        self._row_of = {}
        self._stale = True
        self._window_cache.clear()
        self._cache_version = None

    def ensure(self) -> ChaseTableau:
        """The chased live tableau, rebuilding from ``state_source``
        when an update invalidated it (through the bulk kernel when
        eligible — see :meth:`chase_fresh`)."""
        if not self._stale and self._tableau is not None:
            return self._tableau
        tableau, row_of = self.tableau_from(self._state_source())
        chaser, result = self.chase_fresh(tableau)
        if chaser is None:
            # unreachable through the public APIs (the owners validate
            # every mutation), but the poisoned-state contract matters:
            # a state source that hands back a violating state must
            # surface the contradiction, not serve wrong windows
            # (pinned by a checker-stub test)
            raise InconsistentStateError(
                f"checker state stopped satisfying the FDs: {result.contradiction}"
            )
        self.adopt(tableau, chaser, row_of)
        self.stats.rebuilds += 1
        return tableau

    # -- incremental updates ----------------------------------------------------

    def append(self, scheme_name: str, t) -> None:
        """Add a validated tuple's row to the live tableau (no fixpoint
        drive — callers batch that via :meth:`drive`).  A no-op while
        stale: the next :meth:`ensure` rebuild picks the tuple up from
        the state source."""
        if self._stale or self._tableau is None:
            return
        scheme = self.schema[scheme_name]
        self._row_of[(scheme_name, t)] = self._tableau.add_padded(
            scheme.attributes, t, RowOrigin("state", scheme.name)
        )

    def run_chaser(self) -> ChaseResult:
        """Drive the fixpoint over rows appended since the last drive.

        On a contradiction the poisoned tableau is invalidated before
        the result is returned.
        """
        assert self._chaser is not None
        self.stats.incremental_chases += 1
        result = self._chaser.run()
        if not result.consistent:
            self.invalidate()
        return result

    def drive(self) -> bool:
        """Boolean convenience around :meth:`run_chaser`."""
        return self.run_chaser().consistent

    def retract(self, scheme_name: str, t) -> None:
        """Maintain the live tableau after the backing state deleted a
        tuple: retract the row and re-derive only its merge footprint,
        falling back to invalidate-and-rebuild when the affected set
        exceeds ``delete_rebuild_fraction`` of the live rows, when the
        merge log cannot scope the tableau, or when
        ``scoped_deletes=False``.
        """
        if self._stale or self._tableau is None:
            return  # nothing live to maintain; next query rebuilds
        if not self.scoped_deletes:
            self.invalidate()
            return
        idx = self._row_of.get((scheme_name, t))
        if idx is None:  # locator out of sync: be safe, rebuild
            self.invalidate()
            return
        tableau = self._tableau
        impact = tableau.retraction_impact(idx)
        threshold = self.delete_rebuild_fraction * tableau.live_row_count()
        if not impact.complete or len(impact.affected_rows) > threshold:
            self.stats.delete_fallbacks += 1
            self.invalidate()
            return
        pre_version = tableau.version
        del self._row_of[(scheme_name, t)]
        assert self._chaser is not None
        result = self._chaser.rechase_scoped(idx, impact)
        if not result.consistent:  # pragma: no cover - deletes are safe
            # a deletion cannot make a satisfying state unsatisfying;
            # reaching this means the tableau was corrupted — recover
            # by rebuilding from the (already committed) backing state
            self.invalidate()
            return
        self.stats.scoped_rechases += 1
        n_affected = len(impact.affected_rows)
        self.stats.affected_rows_total += n_affected
        self.stats.affected_rows_max = max(self.stats.affected_rows_max, n_affected)
        # retracted slots are never reused, so a long delete stream
        # accretes dead rows (and linear scans like total_projection
        # pay for them); once they outgrow the live rows, trade one
        # lazy rebuild for a compact tableau
        live = tableau.live_row_count()
        if len(tableau) - live > max(64, live):
            self.stats.compaction_rebuilds += 1
            self.invalidate()
            return
        self._revalidate_windows(impact, pre_version)

    def _revalidate_windows(self, impact, pre_version: PyTuple[int, int]) -> None:
        """Selective window-cache invalidation after a scoped delete.

        A cached window survives iff (a) it was current immediately
        before the delete, (b) none of its attributes lie in a column a
        dissolved class touched (so every surviving row's projection is
        unchanged), and (c) the retracted row contributes nothing the
        survivors don't — it was not total on the window, or some live
        row resolves to the same constants.  Survivors are re-stamped
        to the post-delete version; everything else is dropped and
        recomputed lazily.
        """
        tableau = self._tableau
        assert tableau is not None
        survivors: Dict[AttributeSet, RelationInstance] = {}
        if self._cache_version == pre_version:
            changed_attrs = {tableau.columns[c] for c in impact.changed_cols}
            symbols = tableau.symbols
            find = symbols.find
            values = impact.resolved_values
            for target, facts in self._window_cache.items():
                if any(a in changed_attrs for a in target):
                    continue
                cols = [tableau.column_index(a) for a in target]
                vals = [values[c] for c in cols]
                if all(not is_null(v) for v in vals):
                    # the retracted row answered this window: keep the
                    # entry only if a surviving row still produces the
                    # same fact (per-column interning makes that one
                    # occurrence-bucket scan)
                    syms = [
                        symbols.interned_symbol(v, a)
                        for a, v in zip(target, vals)
                    ]
                    if any(s is None for s in syms):  # pragma: no cover
                        continue  # defensive: value untraceable, drop
                    roots = [find(s) for s in syms]
                    if tableau.live_row_matching(cols, roots) is None:
                        continue
                survivors[target] = facts
        self.stats.windows_retained += len(survivors)
        self._window_cache = survivors
        self._cache_version = tableau.version

    # -- queries ----------------------------------------------------------------

    def window(
        self, target: AttributeSet, count_hits: bool = True
    ) -> RelationInstance:
        """The ``target``-total projection of the live tableau, through
        the version-disciplined LRU cache (see the class docstring).
        Owners bump ``stats.window_queries``; this bumps the hit and
        eviction counters.  ``count_hits=False`` suppresses the hit
        counter for *internal* consultations that are not themselves a
        served query (the sharded merge path reads several shards per
        query — counting each would let hits exceed queries).
        """
        tableau = self.ensure()
        version = tableau.version
        cache = self._window_cache
        if version != self._cache_version:
            # an update superseded every cached window: prune wholesale
            cache.clear()
            self._cache_version = version
        else:
            facts = cache.get(target)
            if facts is not None:
                if count_hits:
                    self.stats.window_cache_hits += 1
                # refresh LRU position (dict preserves insertion order)
                del cache[target]
                cache[target] = facts
                return facts
        facts = tableau.total_projection(target)
        cache[target] = facts
        if len(cache) > self.window_cache_limit:
            cache.pop(next(iter(cache)))
            self.stats.window_cache_evictions += 1
        return facts

    def filtered_window(
        self, target: AttributeSet, bindings: Sequence[PyTuple[str, object]]
    ) -> RelationInstance:
        """The window with equality filters pushed into the tableau's
        per-attribute value indexes
        (:meth:`~repro.chase.tableau.ChaseTableau.total_projection_matching`).
        An unfiltered call falls through to the cached :meth:`window`;
        filtered results are not cached here — the query engine's
        version-stamped result cache owns that layer.
        """
        if not bindings:
            return self.window(target, count_hits=False)
        tableau = self.ensure()
        return tableau.total_projection_matching(target, bindings)


class WindowQueryAPI:
    """Derived query entry points shared by every service exposing
    :meth:`window` — one implementation, so the global and sharded
    services can never diverge on fact coercion or comparison."""

    def derivable(self, fact: Mapping[str, object]) -> bool:
        """Is the fact (attribute → value mapping) derivable from the
        current state under the dependencies?"""
        target = AttributeSet(list(fact))
        facts = self.window(target)
        wanted = tuple(fact[a] for a in target)
        return any(tuple(t.value(a) for a in target) == wanted for t in facts)

    def window_many(
        self, attrsets: Iterable[AttrsLike]
    ) -> List[RelationInstance]:
        """Answer several window queries against one live service."""
        return [self.window(a) for a in attrsets]

    def derivable_many(
        self, facts: Sequence[Mapping[str, object]]
    ) -> List[bool]:
        """Batch :meth:`derivable`; facts over the same attributes
        share one window lookup (and the cache)."""
        return [self.derivable(fact) for fact in facts]

    def health(self) -> Dict[str, object]:
        """Uniform health surface: in-memory services are always
        serving with no per-shard state; the durable service and the
        server override this with real per-shard status, error detail,
        and queue depths."""
        return {"status": "serving", "shards": {}, "errors": {}}

    # -- relational queries -----------------------------------------------------
    #
    # One QueryEngine per service, created on first use (services stay
    # importable without the query package loaded).  The engine drives
    # the service back through three duck-typed hooks — _query_route /
    # _query_stamps / _query_scan — which each concrete service
    # implements over its own tableau topology.

    def _query_engine(self):
        engine = getattr(self, "_engine", None)
        if engine is None:
            from repro.query.engine import QueryEngine

            engine = QueryEngine(self)
            self._engine = engine
        return engine

    def query(self, query) -> RelationInstance:
        """Evaluate a relational query (compact text form or a
        :class:`repro.query.ast.Query`) against the current state:
        scans are ``[X]``-windows, the operators above them run as
        planned by :mod:`repro.query.planner`, and results are served
        from the version-stamped cache when no participating shard
        changed.  Returns a :class:`RelationInstance`."""
        return self._query_engine().run(query)

    def explain(self, query):
        """Like :meth:`query`, but returns the
        :class:`repro.query.engine.QueryExplain` — routing per leaf
        (shards vs composer), pushed filters, participants' version
        stamps, and cache traffic — with the result attached."""
        return self._query_engine().explain(query)


class WeakInstanceService(WindowQueryAPI):
    """Keeps the chased representative instance live across updates.

    See the module docstring for the design.  Construct over a schema
    and FDs, :meth:`load` a base state, then interleave
    :meth:`insert`/:meth:`delete` with :meth:`window`/:meth:`derivable`
    freely — every answer is identical to re-deriving from scratch
    with :func:`repro.weak.representative.window` on the current
    state (the randomized equivalence suite pins this).
    """

    #: default ceiling on cached windows (LRU eviction beyond it)
    DEFAULT_WINDOW_CACHE_LIMIT = LiveTableau.DEFAULT_WINDOW_CACHE_LIMIT
    #: default rebuild-fallback threshold: a delete whose affected set
    #: exceeds this fraction of the live rows invalidates instead of
    #: rechasing, bounding the worst case at one rebuild
    DEFAULT_DELETE_REBUILD_FRACTION = LiveTableau.DEFAULT_DELETE_REBUILD_FRACTION

    def __init__(
        self,
        schema: DatabaseSchema,
        fds: Union[FDSet, Iterable[FD], str],
        method: Method = "chase",
        report: Optional[IndependenceReport] = None,
        scoped_deletes: bool = True,
        delete_rebuild_fraction: float = DEFAULT_DELETE_REBUILD_FRACTION,
        window_cache_limit: int = DEFAULT_WINDOW_CACHE_LIMIT,
        bulk_loads: bool = True,
    ):
        self.schema = schema
        self.fds = as_fdset(fds)
        self.checker = MaintenanceChecker(schema, self.fds, method=method, report=report)
        self.stats = ServiceStats()
        #: monotone state-change stamp: the single "participant" the
        #: query engine's result cache keys on for this unsharded
        #: service (the sharded service keys on per-shard versions)
        self._mutations = 0
        self._live = LiveTableau(
            schema,
            self.fds,
            lambda: self.checker.state(),
            self.stats,
            scoped_deletes=scoped_deletes,
            delete_rebuild_fraction=delete_rebuild_fraction,
            window_cache_limit=window_cache_limit,
            bulk_loads=bulk_loads,
        )

    @classmethod
    def from_state(
        cls,
        state: DatabaseState,
        fds: Union[FDSet, Iterable[FD], str],
        method: Method = "chase",
        report: Optional[IndependenceReport] = None,
        **options,
    ) -> "WeakInstanceService":
        """Build a service over the state's schema and load the state
        (``options`` pass through to the constructor: ``scoped_deletes``,
        ``delete_rebuild_fraction``, ``window_cache_limit``)."""
        service = cls(state.schema, fds, method=method, report=report, **options)
        service.load(state)
        return service

    @property
    def method(self) -> Method:
        return self.checker.method

    # the tuning knobs stay writable on a live service (they were plain
    # attributes before the LiveTableau extraction); writes forward to
    # the seam, which is what actually consults them
    @property
    def scoped_deletes(self) -> bool:
        return self._live.scoped_deletes

    @scoped_deletes.setter
    def scoped_deletes(self, value: bool) -> None:
        self._live.scoped_deletes = value

    @property
    def delete_rebuild_fraction(self) -> float:
        return self._live.delete_rebuild_fraction

    @delete_rebuild_fraction.setter
    def delete_rebuild_fraction(self, value: float) -> None:
        self._live.delete_rebuild_fraction = value

    @property
    def window_cache_limit(self) -> int:
        return self._live.window_cache_limit

    @window_cache_limit.setter
    def window_cache_limit(self, value: int) -> None:
        self._live.window_cache_limit = value

    @property
    def bulk_loads(self) -> bool:
        return self._live.bulk_loads

    @bulk_loads.setter
    def bulk_loads(self, value: bool) -> None:
        self._live.bulk_loads = value

    # -- compatibility views into the live-tableau seam --------------------------

    @property
    def _stale(self) -> bool:
        return not self._live.live

    @_stale.setter
    def _stale(self, value: bool) -> None:
        if value:
            self._live.invalidate()
        else:  # pragma: no cover - only invalidation is forced externally
            self._live._stale = False

    @property
    def _window_cache(self) -> Dict[AttributeSet, RelationInstance]:
        return self._live._window_cache

    # -- loading ---------------------------------------------------------------

    def load(self, state: DatabaseState) -> None:
        """Load a base state (atomic: a violating state changes nothing).

        With ``method="chase"`` the validating chase *is* the next live
        tableau, so loading costs exactly one chase of the combined
        state — on an empty service, the same as one from-scratch
        query.  The chase itself runs on the column-major bulk kernel
        whenever eligible (``bulk_loads``, on by default), with the
        merge log batch-recorded so scoped deletes work on the loaded
        state.  Loading onto a non-empty service validates the
        *combination* of the stored and incoming tuples, through the
        same FD-only chase as every other entry point.
        """
        if self.method != "chase":
            self.checker.load(state)
            self._live.invalidate()
            self._mutations += 1
            return
        if self.checker.total_tuples() == 0:
            tableau, row_of = self._live.tableau_from(state)
        else:
            tableau, row_of = self._live.tableau_from(self.checker.state())
            for scheme, relation in state:
                for t in relation:
                    key = (scheme.name, t)
                    if key in row_of or self.checker.contains(scheme.name, t):
                        continue
                    row_of[key] = tableau.add_padded(
                        scheme.attributes, t, RowOrigin("state", scheme.name)
                    )
        chaser, result = self._live.chase_fresh(tableau)
        if chaser is None:
            # the candidate tableau is discarded; the previous live
            # tableau (if any) and the checker are untouched
            raise InconsistentStateError(
                f"state is not satisfying: {result.contradiction}"
            )
        self.checker.load(state, assume_valid=True)
        self._live.adopt(tableau, chaser, row_of)
        self._mutations += 1

    # -- updates -----------------------------------------------------------------

    def insert(self, scheme_name: str, row: RowLike) -> InsertOutcome:
        """Validate, commit, and incrementally chase one insertion."""
        if self.method != "local":
            return self._insert_via_chase(scheme_name, row)
        outcome = self._insert_no_chase(scheme_name, row)
        if outcome.accepted and not outcome.reason and self._live.live:
            if not self._live.drive():  # pragma: no cover - defensive
                # The checker accepted, so the FD-chase cannot contradict
                # (a weak instance exists); recover anyway by undoing the
                # commit and reporting the rejection.
                self.checker.delete(scheme_name, outcome.tuple)
                self.stats.inserts_accepted -= 1
                self.stats.inserts_rejected += 1
                return InsertOutcome(
                    accepted=False,
                    scheme=scheme_name,
                    tuple=outcome.tuple,
                    method=self.method,
                    reason="incremental chase contradicted the checker's verdict",
                )
        return outcome

    def _insert_no_chase(self, scheme_name: str, row: RowLike) -> InsertOutcome:
        """Local-method path: validate via the checker's O(1) index
        check, commit, and append the accepted row to the live tableau
        *without* driving the fixpoint (the caller batches that)."""
        assert self.method == "local"
        outcome = self.checker.insert(scheme_name, row)
        if not outcome.accepted:
            self.stats.inserts_rejected += 1
            return outcome
        self.stats.inserts_accepted += 1
        if outcome.reason:  # duplicate: nothing new to chase
            self.stats.duplicate_inserts += 1
            return outcome
        self._mutations += 1
        self._live.append(scheme_name, outcome.tuple)
        return outcome

    def _insert_via_chase(self, scheme_name: str, row: RowLike) -> InsertOutcome:
        """Chase-method insert: the incremental chase is the validator,
        so acceptance costs the triggered cascade instead of the full
        re-chase ``MaintenanceChecker.check_insert`` would run."""
        t = self.checker.coerce_tuple(scheme_name, row)
        if self.checker.contains(scheme_name, t):
            self.stats.inserts_accepted += 1
            self.stats.duplicate_inserts += 1
            return InsertOutcome(
                accepted=True,
                scheme=scheme_name,
                tuple=t,
                method="chase",
                reason="duplicate tuple: state unchanged (set semantics)",
            )
        self._live.ensure()
        self._live.append(scheme_name, t)
        result = self._live.run_chaser()
        if not result.consistent:
            # the appended row poisoned the tableau; run_chaser dropped
            # it (the tuple was never committed to the checker) and the
            # next query rebuilds lazily
            self.stats.inserts_rejected += 1
            return InsertOutcome(
                accepted=False,
                scheme=scheme_name,
                tuple=t,
                method="chase",
                violated_fd=result.contradiction.fd if result.contradiction else None,
                reason=str(result.contradiction),
            )
        self.checker.apply_insert(scheme_name, t)
        self.stats.inserts_accepted += 1
        self._mutations += 1
        return InsertOutcome(accepted=True, scheme=scheme_name, tuple=t, method="chase")

    def delete(self, scheme_name: str, row: RowLike) -> bool:
        """Delete a tuple; returns whether it existed.

        Satisfaction survives any deletion, but derived facts may not.
        Instead of invalidating the live tableau wholesale, the delete
        retracts the tuple's row and re-derives only its merge
        footprint (:meth:`LiveTableau.retract`), keeping the tableau —
        and every untouched window-cache entry — live.  Falls back to
        invalidate-and-rebuild when the affected set exceeds
        ``delete_rebuild_fraction`` of the live rows, when the merge
        log cannot scope the tableau, or when ``scoped_deletes=False``.
        """
        t = self.checker.coerce_tuple(scheme_name, row)
        existed = self.checker.delete(scheme_name, t)
        if not existed:
            return False
        self.stats.deletes += 1
        self._mutations += 1
        self._live.retract(scheme_name, t)
        return True

    # -- queries ------------------------------------------------------------------

    def window(self, attrset: AttrsLike) -> RelationInstance:
        """The derivable ``X``-facts of the *current* state: the
        ``X``-total projection of the live representative instance.

        Cached per ``AttributeSet``.  The whole cache belongs to one
        tableau version: the first query after any update prunes every
        superseded entry (scoped deletes re-stamp the entries they
        prove untouched, so those survive), which keeps a long
        insert+query stream from accumulating dead versions.  An LRU
        bound (``window_cache_limit``) caps the footprint even at a
        single version.
        """
        target = AttributeSet(attrset)
        self.stats.window_queries += 1
        return self._live.window(target)

    def representative(self) -> ChaseTableau:
        """The live chased tableau ``I(p)`` (read-only: mutate it and
        the service's answers are undefined)."""
        return self._live.ensure()

    # -- query-engine hooks ------------------------------------------------------

    def _query_route(
        self, target: AttributeSet, always_compose: bool = False
    ) -> PyTuple[str, PyTuple[str, ...]]:
        """Every scan reads the one global tableau; the pseudo-shard
        name ``"*"`` is the single result-cache participant."""
        return ("tableau", ("*",))

    def _query_stamps(self, names: Sequence[str]) -> PyTuple[int, ...]:
        return tuple(self._mutations for _ in names)

    def _query_scan(
        self,
        target: AttributeSet,
        bindings: Sequence[PyTuple[str, object]],
        route: str,
        shards: Sequence[str],
    ) -> RelationInstance:
        return self._live.filtered_window(target, bindings)

    # -- batch APIs ----------------------------------------------------------------

    def insert_many(
        self, ops: Iterable[PyTuple[str, RowLike]]
    ) -> List[InsertOutcome]:
        """Insert a batch, driving one fixpoint over all appended rows.

        With ``method="local"`` every row is validated by the O(1)
        index check before any chase work, so the whole batch needs a
        single worklist drive; with ``method="chase"`` validation *is*
        the chase and rows are processed one by one.
        """
        outcomes: List[InsertOutcome] = []
        if self.method != "local":
            for scheme_name, row in ops:
                outcomes.append(self.insert(scheme_name, row))
            return outcomes
        appended = False
        for scheme_name, row in ops:
            outcome = self._insert_no_chase(scheme_name, row)
            outcomes.append(outcome)
            if outcome.accepted and not outcome.reason and self._live.live:
                appended = True
        if appended:
            self._live.drive()
        return outcomes

    # -- introspection ----------------------------------------------------------------

    def state(self) -> DatabaseState:
        """Immutable snapshot of the current state."""
        return self.checker.state()

    def total_tuples(self) -> int:
        return self.checker.total_tuples()

    @property
    def live(self) -> bool:
        """Is the chased tableau current (no rebuild pending)?"""
        return self._live.live

    def __repr__(self) -> str:
        rows = self._live.row_count()
        return (
            f"WeakInstanceService<method={self.method}, "
            f"tuples={self.total_tuples()}, "
            f"tableau_rows={'∅' if rows is None else rows}, "
            f"live={self.live}>"
        )
