"""A live weak-instance query service.

The one-shot functions of :mod:`repro.weak.representative` rebuild and
re-chase the whole tableau ``I(p)`` on every query — fine for a single
question, hopeless for serving traffic.  :class:`WeakInstanceService`
keeps the chased representative instance **live** across updates:

* **Inserts** are validated by a wrapped
  :class:`~repro.core.maintenance.MaintenanceChecker` and then chased
  *incrementally*: the new row is appended to the already-chased
  tableau and only the dirty-row worklist it seeds is driven to
  fixpoint (:class:`~repro.chase.engine.IncrementalFDChaser`), reusing
  the engine's per-FD partitions and the tableau's occurrence/value
  indexes.  Cost per insert is the cascade the tuple actually
  triggers, not a rescan of the state.
* **Deletes** are always safe for satisfaction (any weak instance for
  ``p`` is one for ``p`` minus a tuple) but can retract derived facts,
  so they invalidate the live tableau; the next query rebuilds it from
  the checker's current state.  Deletions are therefore the one
  operation that is not incremental — the paper gives no locality
  result for them.
* **Queries** (:meth:`window`, :meth:`derivable`) read the live
  tableau's total projection through a per-``AttributeSet`` cache
  keyed by the tableau's version stamp, so repeated queries between
  updates are O(1).

Validation semantics follow :func:`repro.weak.representative.window`:
consistency means *a weak instance for the FDs exists*, decided by the
FD-only chase — which coincides with full ``F ∪ {*D}`` satisfaction
whenever every FD is embedded in the schema (Lemma 4), the paper's
setting.  For non-embedded FDs this is deliberately weaker than
``MaintenanceChecker(method="chase").check_insert`` (which also chases
the schema's join dependency); use the checker directly when you need
the full ``Σ`` maintenance test.  With ``method="local"`` (independent
schemas, Theorem 3) insert validation is O(1) per embedded-cover FD;
with ``method="chase"`` the incremental chase itself is the validator
— a contradiction rejects the tuple and rebuilds the tableau from the
(uncommitted) state.  Both :meth:`load` paths (empty and incremental)
validate through the same FD-only chase, so acceptance never depends
on how the data was batched.

Batch entry points (:meth:`insert_many`, :meth:`window_many`,
:meth:`derivable_many`) amortize fixpoint drives and cache lookups
over a whole stream of operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple as PyTuple,
    Union,
)

from repro.chase.engine import IncrementalFDChaser
from repro.chase.tableau import ChaseTableau, RowOrigin
from repro.core.independence import IndependenceReport
from repro.core.maintenance import InsertOutcome, MaintenanceChecker, Method
from repro.data.relations import RelationInstance, RowLike
from repro.data.states import DatabaseState
from repro.deps.fd import FD
from repro.deps.fdset import FDSet, as_fdset
from repro.exceptions import InconsistentStateError
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.schema.database import DatabaseSchema


@dataclass
class ServiceStats:
    """Operation counters (benchmark and test introspection)."""

    inserts_accepted: int = 0
    inserts_rejected: int = 0
    duplicate_inserts: int = 0
    deletes: int = 0
    rebuilds: int = 0
    incremental_chases: int = 0
    window_queries: int = 0
    window_cache_hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class WeakInstanceService:
    """Keeps the chased representative instance live across updates.

    See the module docstring for the design.  Construct over a schema
    and FDs, :meth:`load` a base state, then interleave
    :meth:`insert`/:meth:`delete` with :meth:`window`/:meth:`derivable`
    freely — every answer is identical to re-deriving from scratch
    with :func:`repro.weak.representative.window` on the current
    state (the randomized equivalence suite pins this).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        fds: Union[FDSet, Iterable[FD], str],
        method: Method = "chase",
        report: Optional[IndependenceReport] = None,
    ):
        self.schema = schema
        self.fds = as_fdset(fds)
        self.checker = MaintenanceChecker(schema, self.fds, method=method, report=report)
        self._fd_tuple: PyTuple[FD, ...] = tuple(self.fds)
        self._tableau: Optional[ChaseTableau] = None
        self._chaser: Optional[IncrementalFDChaser] = None
        self._stale = True
        # AttributeSet -> (tableau version at computation, result)
        self._window_cache: Dict[
            AttributeSet, PyTuple[PyTuple[int, int], RelationInstance]
        ] = {}
        self.stats = ServiceStats()

    @classmethod
    def from_state(
        cls,
        state: DatabaseState,
        fds: Union[FDSet, Iterable[FD], str],
        method: Method = "chase",
        report: Optional[IndependenceReport] = None,
    ) -> "WeakInstanceService":
        """Build a service over the state's schema and load the state."""
        service = cls(state.schema, fds, method=method, report=report)
        service.load(state)
        return service

    @property
    def method(self) -> Method:
        return self.checker.method

    # -- loading ---------------------------------------------------------------

    def load(self, state: DatabaseState) -> None:
        """Load a base state (atomic: a violating state changes nothing).

        With ``method="chase"`` the validating chase *is* the next live
        tableau, so loading costs exactly one chase of the combined
        state — on an empty service, the same as one from-scratch
        query.  Loading onto a non-empty service validates the
        *combination* of the stored and incoming tuples, through the
        same FD-only chase as every other entry point.
        """
        if self.method != "chase":
            self.checker.load(state)
            self._invalidate()
            return
        if self.checker.total_tuples() == 0:
            tableau = ChaseTableau.from_state(state)
        else:
            tableau = ChaseTableau.from_state(self.checker.state())
            seen = set()
            for scheme, relation in state:
                for t in relation:
                    if (scheme.name, t) in seen or self.checker.contains(
                        scheme.name, t
                    ):
                        continue
                    seen.add((scheme.name, t))
                    tableau.add_padded(
                        scheme.attributes, t, RowOrigin("state", scheme.name)
                    )
        chaser = IncrementalFDChaser(tableau, self._fd_tuple)
        result = chaser.run()
        if not result.consistent:
            # the candidate tableau is discarded; the previous live
            # tableau (if any) and the checker are untouched
            raise InconsistentStateError(
                f"state is not satisfying: {result.contradiction}"
            )
        self.checker.load(state, assume_valid=True)
        self._adopt(tableau, chaser)

    # -- live tableau management -----------------------------------------------

    def _adopt(self, tableau: ChaseTableau, chaser: IncrementalFDChaser) -> None:
        self._tableau = tableau
        self._chaser = chaser
        self._stale = False
        # never reuse windows across tableaux: a rebuilt tableau can
        # coincidentally reproduce an old version stamp
        self._window_cache.clear()

    def _invalidate(self) -> None:
        self._tableau = None
        self._chaser = None
        self._stale = True
        self._window_cache.clear()

    def _ensure_live(self) -> ChaseTableau:
        """The chased live tableau, rebuilding from the checker's state
        when an update invalidated it."""
        if not self._stale and self._tableau is not None:
            return self._tableau
        tableau = ChaseTableau.from_state(self.checker.state())
        chaser = IncrementalFDChaser(tableau, self._fd_tuple)
        result = chaser.run()
        if not result.consistent:  # pragma: no cover - checker-validated state
            raise InconsistentStateError(
                f"checker state stopped satisfying the FDs: {result.contradiction}"
            )
        self._adopt(tableau, chaser)
        self.stats.rebuilds += 1
        return tableau

    def _chase_appended(self) -> bool:
        """Drive the fixpoint over rows appended since the last drive.

        Returns False (and invalidates the poisoned tableau) on a
        contradiction.
        """
        assert self._chaser is not None
        self.stats.incremental_chases += 1
        result = self._chaser.run()
        if not result.consistent:
            self._invalidate()
            return False
        return True

    # -- updates -----------------------------------------------------------------

    def insert(self, scheme_name: str, row: RowLike) -> InsertOutcome:
        """Validate, commit, and incrementally chase one insertion."""
        if self.method != "local":
            return self._insert_via_chase(scheme_name, row)
        outcome = self._insert_no_chase(scheme_name, row)
        if outcome.accepted and not outcome.reason and not self._stale:
            if not self._chase_appended():  # pragma: no cover - defensive
                # The checker accepted, so the FD-chase cannot contradict
                # (a weak instance exists); recover anyway by undoing the
                # commit and reporting the rejection.
                self.checker.delete(scheme_name, outcome.tuple)
                self.stats.inserts_accepted -= 1
                self.stats.inserts_rejected += 1
                return InsertOutcome(
                    accepted=False,
                    scheme=scheme_name,
                    tuple=outcome.tuple,
                    method=self.method,
                    reason="incremental chase contradicted the checker's verdict",
                )
        return outcome

    def _insert_no_chase(self, scheme_name: str, row: RowLike) -> InsertOutcome:
        """Local-method path: validate via the checker's O(1) index
        check, commit, and append the accepted row to the live tableau
        *without* driving the fixpoint (the caller batches that)."""
        assert self.method == "local"
        outcome = self.checker.insert(scheme_name, row)
        if not outcome.accepted:
            self.stats.inserts_rejected += 1
            return outcome
        self.stats.inserts_accepted += 1
        if outcome.reason:  # duplicate: nothing new to chase
            self.stats.duplicate_inserts += 1
            return outcome
        self._append_row(scheme_name, outcome.tuple)
        return outcome

    def _insert_via_chase(self, scheme_name: str, row: RowLike) -> InsertOutcome:
        """Chase-method insert: the incremental chase is the validator,
        so acceptance costs the triggered cascade instead of the full
        re-chase ``MaintenanceChecker.check_insert`` would run."""
        t = self.checker.coerce_tuple(scheme_name, row)
        if self.checker.contains(scheme_name, t):
            self.stats.inserts_accepted += 1
            self.stats.duplicate_inserts += 1
            return InsertOutcome(
                accepted=True,
                scheme=scheme_name,
                tuple=t,
                method="chase",
                reason="duplicate tuple: state unchanged (set semantics)",
            )
        self._ensure_live()
        self._append_row(scheme_name, t)
        assert self._chaser is not None
        self.stats.incremental_chases += 1
        result = self._chaser.run()
        if not result.consistent:
            # the appended row poisoned the tableau; drop it (the tuple
            # was never committed to the checker) and rebuild lazily
            self._invalidate()
            self.stats.inserts_rejected += 1
            return InsertOutcome(
                accepted=False,
                scheme=scheme_name,
                tuple=t,
                method="chase",
                violated_fd=result.contradiction.fd if result.contradiction else None,
                reason=str(result.contradiction),
            )
        self.checker.apply_insert(scheme_name, t)
        self.stats.inserts_accepted += 1
        return InsertOutcome(accepted=True, scheme=scheme_name, tuple=t, method="chase")

    def _append_row(self, scheme_name: str, t) -> None:
        if self._stale or self._tableau is None:
            return
        scheme = self.schema[scheme_name]
        self._tableau.add_padded(
            scheme.attributes, t, RowOrigin("state", scheme.name)
        )

    def delete(self, scheme_name: str, row: RowLike) -> bool:
        """Delete a tuple; returns whether it existed.  Satisfaction
        survives any deletion, but derived facts may not, so the live
        tableau is invalidated and rebuilt on the next query."""
        existed = self.checker.delete(scheme_name, row)
        if existed:
            self.stats.deletes += 1
            self._invalidate()
        return existed

    # -- queries ------------------------------------------------------------------

    def window(self, attrset: AttrsLike) -> RelationInstance:
        """The derivable ``X``-facts of the *current* state: the
        ``X``-total projection of the live representative instance."""
        target = AttributeSet(attrset)
        self.stats.window_queries += 1
        tableau = self._ensure_live()
        version = tableau.version
        cached = self._window_cache.get(target)
        if cached is not None and cached[0] == version:
            self.stats.window_cache_hits += 1
            return cached[1]
        facts = tableau.total_projection(target)
        self._window_cache[target] = (version, facts)
        return facts

    def derivable(self, fact: Mapping[str, object]) -> bool:
        """Is the fact (attribute → value mapping) derivable from the
        current state under the dependencies?"""
        target = AttributeSet(list(fact))
        facts = self.window(target)
        wanted = tuple(fact[a] for a in target)
        return any(tuple(t.value(a) for a in target) == wanted for t in facts)

    def representative(self) -> ChaseTableau:
        """The live chased tableau ``I(p)`` (read-only: mutate it and
        the service's answers are undefined)."""
        return self._ensure_live()

    # -- batch APIs ----------------------------------------------------------------

    def insert_many(
        self, ops: Iterable[PyTuple[str, RowLike]]
    ) -> List[InsertOutcome]:
        """Insert a batch, driving one fixpoint over all appended rows.

        With ``method="local"`` every row is validated by the O(1)
        index check before any chase work, so the whole batch needs a
        single worklist drive; with ``method="chase"`` validation *is*
        the chase and rows are processed one by one.
        """
        outcomes: List[InsertOutcome] = []
        if self.method != "local":
            for scheme_name, row in ops:
                outcomes.append(self.insert(scheme_name, row))
            return outcomes
        appended = False
        for scheme_name, row in ops:
            outcome = self._insert_no_chase(scheme_name, row)
            outcomes.append(outcome)
            if outcome.accepted and not outcome.reason and not self._stale:
                appended = True
        if appended:
            self._chase_appended()
        return outcomes

    def window_many(
        self, attrsets: Iterable[AttrsLike]
    ) -> List[RelationInstance]:
        """Answer several window queries against one live tableau."""
        return [self.window(a) for a in attrsets]

    def derivable_many(
        self, facts: Sequence[Mapping[str, object]]
    ) -> List[bool]:
        """Batch :meth:`derivable`; facts over the same attributes
        share one window lookup (and the cache)."""
        return [self.derivable(fact) for fact in facts]

    # -- introspection ----------------------------------------------------------------

    def state(self) -> DatabaseState:
        """Immutable snapshot of the current state."""
        return self.checker.state()

    def total_tuples(self) -> int:
        return self.checker.total_tuples()

    @property
    def live(self) -> bool:
        """Is the chased tableau current (no rebuild pending)?"""
        return not self._stale

    def __repr__(self) -> str:
        rows = len(self._tableau) if self._tableau is not None else "∅"
        return (
            f"WeakInstanceService<method={self.method}, "
            f"tuples={self.total_tuples()}, tableau_rows={rows}, "
            f"live={self.live}>"
        )
