"""Information ordering and equivalence of database states ([M]).

Mendelzon's view of states as tableaux: the *information content* of a
state ``p`` (w.r.t. FDs ``F``) is its chased tableau ``chase(I(p))``.
A state ``q`` contains at least the information of ``p`` when there is
a **homomorphism** from ``p``'s chased tableau into ``q``'s — a map of
symbols that is the identity on constants and sends rows to rows.
Two states are information-equivalent when each contains the other;
the derivable facts (total projections over every attribute set) then
coincide, which the test suite checks against this definition.

Homomorphism search is backtracking over row images with forward
pruning; tableaux at relation-scheme scale keep it comfortably fast.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple as PyTuple, Union

from repro.chase.engine import chase_fds
from repro.chase.tableau import ChaseTableau
from repro.data.states import DatabaseState
from repro.data.values import Null, is_null
from repro.deps.fd import FD
from repro.deps.fdset import FDSet, as_fdset
from repro.exceptions import InconsistentStateError

Row = PyTuple[object, ...]


def _chased_rows(state: DatabaseState, fds) -> List[Row]:
    tableau = ChaseTableau.from_state(state)
    result = chase_fds(tableau, as_fdset(fds))
    if not result.consistent:
        raise InconsistentStateError(
            f"state is not satisfying: {result.contradiction}"
        )
    rel = tableau.to_relation()
    return [tuple(t.values) for t in rel]


def _find_homomorphism(
    source: List[Row], target: List[Row]
) -> Optional[Dict[Null, object]]:
    """A symbol map (identity on constants) sending every source row to
    some target row, or ``None``."""

    mapping: Dict[Null, object] = {}

    def row_compatible(src: Row, dst: Row, local: Dict[Null, object]) -> Optional[Dict[Null, object]]:
        added: Dict[Null, object] = {}
        for sv, dv in zip(src, dst):
            if is_null(sv):
                bound = mapping.get(sv, added.get(sv, local.get(sv)))
                if bound is None:
                    added[sv] = dv
                elif bound != dv:
                    return None
            else:
                if sv != dv:
                    return None
        return added

    # order rows most-constrained first (fewest nulls)
    order = sorted(range(len(source)), key=lambda i: sum(is_null(v) for v in source[i]))

    def backtrack(k: int) -> bool:
        if k == len(order):
            return True
        src = source[order[k]]
        for dst in target:
            added = row_compatible(src, dst, {})
            if added is None:
                continue
            mapping.update(added)
            if backtrack(k + 1):
                return True
            for key in added:
                mapping.pop(key, None)
        return False

    return mapping if backtrack(0) else None


def information_contains(
    bigger: DatabaseState,
    smaller: DatabaseState,
    fds: Union[FDSet, str, Iterable[FD]],
) -> bool:
    """Does ``bigger`` contain at least the information of ``smaller``
    (a homomorphism ``chase(I(smaller)) → chase(I(bigger))`` exists)?"""
    src = _chased_rows(smaller, fds)
    dst = _chased_rows(bigger, fds)
    if not src:
        return True
    if not dst:
        return False
    return _find_homomorphism(src, dst) is not None


def information_equivalent(
    p: DatabaseState,
    q: DatabaseState,
    fds: Union[FDSet, str, Iterable[FD]],
) -> bool:
    """Mutual containment: the two states carry the same information."""
    return information_contains(p, q, fds) and information_contains(q, p, fds)
