"""The representative instance and weak-instance query answering.

The introduction of the paper motivates weak instances with an
inference example: from ``CT ∋ (CS101, Smith)``, ``CHR ∋ (CS101,
Mon-10, 313)`` and the FD ``C → T``, one *deduces* that Smith is in
room 313 on Monday at 10.  Formally: chase ``I(p)`` with the
dependencies; tuples of the final tableau whose ``X``-values are all
constants form the derivable ``X``-facts (the *total projection* or
"window" of [S1]/[M]).

For FDs embedded in the schema the FD-only chase suffices (Lemma 4),
so every query here is polynomial.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.chase.engine import chase_fds
from repro.chase.tableau import ChaseTableau
from repro.data.relations import RelationInstance
from repro.data.states import DatabaseState
from repro.deps.fd import FD
from repro.deps.fdset import FDSet, as_fdset
from repro.exceptions import InconsistentStateError
from repro.schema.attributes import AttributeSet, AttrsLike


def representative_instance(
    state: DatabaseState, fds: Union[FDSet, Iterable[FD]]
) -> ChaseTableau:
    """The chased tableau ``I(p)`` (FD-rules to fixpoint).

    Raises :class:`InconsistentStateError` when the state does not
    satisfy the FDs (no weak instance exists).
    """
    tableau = ChaseTableau.from_state(state)
    result = chase_fds(tableau, as_fdset(fds))
    if not result.consistent:
        raise InconsistentStateError(
            f"state is not satisfying: {result.contradiction}"
        )
    return tableau


def window(
    state: DatabaseState, fds: Union[FDSet, Iterable[FD]], attrset: AttrsLike
) -> RelationInstance:
    """The derivable ``X``-facts: the ``X``-total projection of the
    representative instance."""
    tableau = representative_instance(state, fds)
    return tableau.total_projection(AttributeSet(attrset))


def derivable(
    state: DatabaseState,
    fds: Union[FDSet, Iterable[FD]],
    fact: dict,
) -> bool:
    """Is the fact (an attribute→value mapping) derivable from the
    state under the dependencies?"""
    attrs = AttributeSet(list(fact))
    facts = window(state, fds, attrs)
    target = tuple(fact[a] for a in attrs)
    return any(tuple(t.value(a) for a in attrs) == target for t in facts)
