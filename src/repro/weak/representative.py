"""The representative instance and weak-instance query answering.

The introduction of the paper motivates weak instances with an
inference example: from ``CT ∋ (CS101, Smith)``, ``CHR ∋ (CS101,
Mon-10, 313)`` and the FD ``C → T``, one *deduces* that Smith is in
room 313 on Monday at 10.  Formally: chase ``I(p)`` with the
dependencies; tuples of the final tableau whose ``X``-values are all
constants form the derivable ``X``-facts (the *total projection* or
"window" of [S1]/[M]).

For FDs embedded in the schema the FD-only chase suffices (Lemma 4),
so every query here is polynomial.

The functions below are one-shot: each call builds a throwaway
:class:`~repro.weak.service.WeakInstanceService` over the state, which
chases ``I(p)`` exactly once — through the column-major bulk kernel
(:mod:`repro.chase.bulk`) whenever the state is big enough, like every
other from-scratch chase.  To answer *many* queries against an
evolving state, hold on to a service instead of re-calling these (that
is precisely the rebuild-per-query baseline the service's benchmark
beats).
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.chase.tableau import ChaseTableau
from repro.data.relations import RelationInstance
from repro.data.states import DatabaseState
from repro.deps.fd import FD
from repro.deps.fdset import FDSet
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.weak.service import WeakInstanceService


def _one_shot(state, fds) -> WeakInstanceService:
    """A throwaway service for a single question.  Scoped deletes are
    off: the tableau will never serve a retraction, so it skips the
    merge-log cost and keeps the one-shot path at exactly the chase's
    price (these functions double as the rebuild-per-query baseline in
    the benchmarks, which must not pay for machinery it cannot use)."""
    return WeakInstanceService.from_state(
        state, fds, method="chase", scoped_deletes=False
    )


def representative_instance(
    state: DatabaseState, fds: Union[FDSet, Iterable[FD]]
) -> ChaseTableau:
    """The chased tableau ``I(p)`` (FD-rules to fixpoint).

    Raises :class:`~repro.exceptions.InconsistentStateError` when the
    state does not satisfy the FDs (no weak instance exists).
    """
    return _one_shot(state, fds).representative()


def window(
    state: DatabaseState, fds: Union[FDSet, Iterable[FD]], attrset: AttrsLike
) -> RelationInstance:
    """The derivable ``X``-facts: the ``X``-total projection of the
    representative instance."""
    return _one_shot(state, fds).window(AttributeSet(attrset))


def derivable(
    state: DatabaseState,
    fds: Union[FDSet, Iterable[FD]],
    fact: dict,
) -> bool:
    """Is the fact (an attribute→value mapping) derivable from the
    state under the dependencies?"""
    return _one_shot(state, fds).derivable(fact)
