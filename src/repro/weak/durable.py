"""Per-shard write-ahead logging and snapshots for the sharded service.

Everything the services of :mod:`repro.weak.service` and
:mod:`repro.weak.sharded` serve lives in process memory: a restart
loses the state, which blocks the ROADMAP's long-lived-server goal.
:class:`DurableShardedService` wraps
:class:`~repro.weak.sharded.ShardedWeakInstanceService` with a
durability layer built on the same independence argument as the
sharding itself (Theorem 3): because every scheme's updates are
validated and applied against that scheme alone, each shard can own an
**independent write-ahead log** — there is no cross-shard transaction
whose atomicity a global log would have to protect.  Concretely:

* **WAL.**  Every accepted, non-duplicate insert or delete appends one
  CRC-framed record (``[u32 length][u32 crc32][JSON payload]``) to its
  scheme's append-only ``wal.log``.  Records are *staged* in memory
  and written by **group commit**: one :meth:`~DurableShardedService.
  commit` drains every shard's staged records, writes them, and issues
  one ``fsync`` per dirty WAL — so ``N`` concurrent writers share
  fsyncs instead of paying one each.  An operation is durable exactly
  when the commit covering its ticket has completed
  (:meth:`~DurableShardedService.wait_durable`).  Because the logs are
  per shard and the shards independent, there is also no *global*
  commit order to protect: :meth:`~DurableShardedService.
  commit_shards` commits any subset of shards in the calling thread,
  serialized per WAL by that WAL's own I/O lock — concurrent callers
  owning disjoint shards overlap their fsyncs (which release the
  GIL), which is where the multi-worker front end's throughput
  scaling comes from.
* **Snapshots.**  Periodically (every ``snapshot_interval`` WAL
  records per shard, or on demand) a shard's full relation is written
  to ``snapshot.json`` — tmp file, ``fsync``, atomic rename, directory
  ``fsync`` — and the WAL is truncated.  The snapshot is taken with
  the shard's pending records committed first (under the shard lock),
  so every operation a snapshot reflects is also on disk; records a
  crash loses are therefore always a *suffix* of the shard's history,
  which is what makes replay-over-snapshot idempotent (set-semantics
  inserts and deletes: the last surviving operation on a tuple decides
  its membership, replayed or not).
* **Recovery.**  Opening an existing directory reads each shard's
  snapshot, replays the WAL tail (stopping at a torn or corrupt frame
  and truncating it), and loads the reconstructed state into the
  sharded service in one atomic :meth:`~repro.weak.sharded.
  ShardedWeakInstanceService.load` — pure set arithmetic plus index
  builds, **no chase**: the shard tableaux and the global composer are
  rebuilt lazily through the column-major bulk kernel
  (:func:`repro.chase.bulk.ingest_state`) when first queried.  The
  recovered state is always, per shard, the state after some prefix of
  that shard's operation history — at least every acknowledged
  (fsynced) operation, at most every applied one.  Cross-shard, the
  prefixes are independent; Theorem 3 is exactly the license for that
  (any combination of per-shard satisfying states is satisfying).

**Fault injection.**  Every durability-critical boundary calls the
optional ``fault_hook`` with a crash-point name (:data:`CRASH_POINTS`)
before proceeding.  A hook that raises simulates the process dying at
that boundary: the instance latches ``crashed`` (further operations
raise :class:`DurableUnavailableError`) and the test harness re-opens
the directory with a fresh instance, exactly like a restart after
``kill -9``.  The ``commit.partial`` point additionally models a torn
machine-crash write: it fires after only a prefix of a WAL's staged
bytes has reached the file.  Below the crash points sits an
**injectable I/O layer** (:class:`StoreIO`): every WAL and snapshot
file operation goes through one substitutable object, so the harness
(``tests/harness/faults.FaultyIO``) can return ``EIO``/``ENOSPC``,
tear writes, or flip bits on reads deterministically.

**Fault isolation.**  Theorem 3 makes the shards independent failure
domains, and the durability layer honors that end to end.  An
:class:`OSError` escaping a shard's WAL or snapshot path is retried
with bounded exponential backoff (``io_retries`` / ``io_backoff``);
a persistent failure confines the damage to that shard:

* ``ENOSPC`` **degrades** the shard to read-only — reads keep serving
  the in-memory state, writes raise
  :class:`~repro.exceptions.ShardQuarantinedError`, and every write
  attempt *probes* for recovery (space freed → the backlog flushes and
  the shard returns to serving on its own).
* Any other persistent I/O error **quarantines** the shard: writes
  *and* reads that need it raise the typed error, while the window
  planner keeps answering every query whose plan does not involve the
  sick shard (the closure guard decides).  The shard's un-fsynced
  records stay staged in memory for the repair path.
* :meth:`DurableShardedService.repair` heals online: newest good
  snapshot generation (the install keeps the last
  ``snapshot_generations`` files as a rename chain) + WAL-tail replay
  + a fresh bulk-loaded shard, then un-quarantine.  The offline
  counterpart is :func:`verify_store` (the ``repro verify-store``
  scrubber), which walks every CRC and snapshot generation without
  opening the service.

Non-``OSError`` exceptions keep the old whole-service crash latch:
they mean the *process* state is suspect, not one shard's disk.

**WAL corruption accounting.**  Replay distinguishes a torn *tail*
(expected after a crash: quietly truncated) from mid-file corruption
with valid frames stranded after it (unexpected: counted in
``wal_corrupt_frames`` / ``wal_truncated_bytes``, logged, and
surfaced by ``verify-store``) — good records are never dropped
silently.

**Schema evolution.**  :meth:`DurableShardedService.evolve` makes the
online migration protocol of :meth:`~repro.weak.sharded.
ShardedWeakInstanceService.evolve` durable.  The commit point is a
root-level **schema WAL** (``schema.log``, same CRC framing as the
shard WALs) plus an atomic manifest rewrite: the evolution record —
epoch, the serialized op, the old and new catalogs — is appended and
fsynced first, then ``MANIFEST.json`` is replaced (tmp + rename) to
name the new epoch.  A crash *before* the manifest replace recovers
the old epoch untouched; a crash *after* it recovers the new epoch,
**rolling forward** any shard whose on-disk snapshot predates the
manifest's epoch by re-applying the logged op's deterministic
``migrate_relations`` transform to the retired source shards (their
directories are retained until every migrated shard's epoch-stamped
snapshot is durable — only then are dropped schemes' directories
removed).  Snapshots carry the epoch they were taken under; reopening
an evolved store rebuilds the service from the manifest's catalog, so
the constructor's (original) schema only has to match what the store
was *created* with.

**Threading.**  Mutations and snapshots are safe under concurrent use:
each scheme has a reentrant shard lock (:meth:`shard_lock`) guarding
apply+stage order, staging and commit hand off through dedicated
internal locks, and :meth:`wait_durable` lets callers block for group
commit without holding any lock.  Reads (``window`` etc.) are *not*
internally locked — single-threaded callers need nothing, and the
multi-client front end (:mod:`repro.weak.server`) provides the read
locking discipline.  Values must be JSON-serializable scalars (the
DSL's strings and integers are); anything else is rejected before the
operation applies.
"""

from __future__ import annotations

import errno as _errno
import json
import logging
import os
import pathlib
import random
import shutil
import struct
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
    Union,
)
from zlib import crc32

from repro.core.independence import IndependenceReport
from repro.core.maintenance import InsertOutcome
from repro.data.states import DatabaseState
from repro.deps.fd import FD
from repro.deps.fdset import FDSet
from repro.exceptions import (
    EvolutionRejectedError,
    ReproError,
    SessionSequenceError,
    ShardQuarantinedError,
)
from repro.schema.attributes import AttributeSet
from repro.schema.database import DatabaseSchema
from repro.schema.evolution import EvolutionOp, evolution_op_from_json
from repro.schema.relation import RelationScheme
from repro.weak.service import WindowQueryAPI
from repro.weak.sharded import (
    EvolutionResult,
    ShardedServiceStats,
    ShardedWeakInstanceService,
)

_log = logging.getLogger(__name__)

#: Crash-point names, in the order a mutation's life passes them.  The
#: fault-injection harness (``tests/harness``) enumerates these; the
#: hook fires *before* the step the name describes completes, except
#: where the name says otherwise.
CRASH_POINTS = (
    "commit.begin",        # staged records chosen, nothing written yet
    "commit.partial",      # half of one WAL's staged bytes written (torn write)
    "commit.pre-fsync",    # all bytes written and flushed, no fsync yet
    "commit.post-fsync",   # every dirty WAL fsynced, tickets not yet released
    "snapshot.begin",      # shard state captured, nothing written yet
    "snapshot.tmp-written",  # tmp snapshot written + fsynced, not yet renamed
    "snapshot.installed",  # renamed over snapshot.json, WAL not yet truncated
    "snapshot.done",       # WAL truncated; snapshot cycle complete
    # -- schema evolution (the migration crash matrix) ------------------
    "evolve.begin",        # evolution requested, nothing changed yet
    "evolve.mid-rebuild",  # a replacement shard is being built
    "evolve.journal-replay",  # mid-migration journal about to replay
    "evolve.pre-wal",      # schema.log record encoded, not yet written
    "evolve.post-wal",     # schema.log fsynced, manifest not yet replaced
    "evolve.manifest",     # manifest replaced (commit point crossed), no
                           #   new-epoch snapshot installed yet → recovery
                           #   must roll the migrated shards forward
    "evolve.done",         # manifest committed, migrated snapshots installed
)

#: crash points exercised by the evolution crash matrix (a subset of
#: :data:`CRASH_POINTS`; ``tests/harness`` parametrizes over these)
MIGRATION_CRASH_POINTS = tuple(p for p in CRASH_POINTS if p.startswith("evolve."))

#: ``fault_hook`` signature: called with a :data:`CRASH_POINTS` name;
#: raising simulates a crash at that boundary.
FaultHook = Callable[[str], None]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

MANIFEST_NAME = "MANIFEST.json"
SCHEMA_LOG_NAME = "schema.log"
WAL_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.json"
_SNAPSHOT_TMP = "snapshot.json.tmp"
_FORMAT = 1

#: frames larger than this never come out of :func:`_encode_record`;
#: the resync scanner uses it to reject garbage "headers" cheaply
_MAX_FRAME_PAYLOAD = 1 << 24

#: per-shard health states (the ``health()`` surface)
SHARD_SERVING = "serving"
SHARD_DEGRADED = "degraded"        # read-only: ENOSPC, probing for recovery
SHARD_QUARANTINED = "quarantined"  # persistent I/O failure: reads+writes refused
SHARD_REPAIRING = "repairing"      # repair() is rebuilding it from disk


class StoreIO:
    """Every filesystem operation the durability layer performs, as one
    substitutable object.

    The default implementation is the real thing; the fault-injection
    harness (``tests/harness/faults.FaultyIO``) subclasses it to raise
    ``EIO``/``ENOSPC`` at scripted occurrences, tear writes, and flip
    bits on reads — which is what makes the quarantine/retry/repair
    machinery deterministically testable.  Only :class:`OSError` may
    be raised from these methods (that is the contract the per-shard
    fault handling keys on).
    """

    def wal_write(self, handle, blob: bytes, path: pathlib.Path) -> None:
        handle.write(blob)

    def wal_fsync(self, handle, path: pathlib.Path) -> None:
        os.fsync(handle.fileno())

    def truncate(self, path: pathlib.Path, size: int) -> None:
        os.truncate(path, size)

    def read_bytes(self, path: pathlib.Path) -> bytes:
        return path.read_bytes()

    def snapshot_write(self, path: pathlib.Path, payload: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    def replace(self, src: pathlib.Path, dst: pathlib.Path) -> None:
        os.replace(src, dst)

    def dir_fsync(self, directory: pathlib.Path) -> None:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


class DurableUnavailableError(ReproError):
    """The durable service crashed (a fault hook fired or a non-I/O
    error escaped a commit/snapshot) and must be re-opened from disk."""


@dataclass
class DurableServiceStats(ShardedServiceStats):
    """Sharded-service counters extended with the durability layer's.

    ``as_dict`` enumerates dataclass fields, so these flow into the
    CLI ``stats`` op and benchmark assertions automatically — tests
    wait on counters, not on sleeps.
    """

    #: WAL records staged (accepted, non-duplicate mutations)
    wal_records_appended: int = 0
    #: group commits that wrote at least one record
    wal_commits: int = 0
    #: fsync() calls issued on WAL files (one per dirty WAL per commit)
    wal_fsyncs: int = 0
    #: bytes written to WAL files
    wal_bytes_written: int = 0
    #: WAL records re-applied while recovering (the journal replays)
    wal_records_replayed: int = 0
    #: per-shard snapshots written
    snapshots_written: int = 0
    #: shards whose recovery started from a snapshot file
    snapshot_loads: int = 0
    #: service opens that recovered existing on-disk state
    recoveries: int = 0
    #: transient I/O errors absorbed by the bounded-backoff retry loop
    io_retries: int = 0
    #: shards quarantined by a persistent (non-ENOSPC) I/O failure
    shards_quarantined: int = 0
    #: shards degraded to read-only by persistent ENOSPC
    shards_degraded: int = 0
    #: shards healed — by :meth:`DurableShardedService.repair` or by a
    #: successful degraded-mode recovery probe
    shards_recovered: int = 0
    #: WAL corruption events: a bad region *followed by valid frames*
    #: (a torn tail — the expected crash residue — does not count)
    wal_corrupt_frames: int = 0
    #: bytes dropped from WALs by mid-file corruption (bad region plus
    #: the stranded records after it; torn tails do not count)
    wal_truncated_bytes: int = 0
    #: recoveries that fell back past a bad snapshot to an older
    #: generation (acknowledged records may have rolled back — logged)
    snapshot_fallbacks: int = 0
    #: schema-evolution records committed to ``schema.log``
    evolutions_logged: int = 0
    #: shards rolled forward at recovery (their snapshot predated the
    #: manifest epoch: the logged op's migration was re-applied)
    evolution_rollforwards: int = 0
    #: duplicate sessioned submissions answered from the dedup table
    #: instead of re-applied (the exactly-once hits)
    session_dedup_hits: int = 0
    #: live entries across every shard's session table
    session_records: int = 0


def _encode_record(
    op: str, values: Sequence[object], meta: Optional[dict] = None
) -> bytes:
    """One framed WAL record.  Raises :class:`ReproError` (before any
    state mutates — callers encode first) on non-JSON values.

    ``meta`` rides as an optional third JSON element — today the
    exactly-once session stamp ``{"sid": ..., "seq": ...}``.  Frames
    without it are byte-identical to the pre-session format, so old
    stores replay unchanged and new frames replay on old readers that
    ignore the extra element."""
    body = [op, list(values)] if meta is None else [op, list(values), meta]
    try:
        payload = json.dumps(
            body, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"durable serving requires JSON-serializable tuple values: {exc}"
        ) from None
    return _FRAME.pack(len(payload), crc32(payload)) + payload


def _decode_frames(
    data: bytes,
) -> PyTuple[
    List[PyTuple[str, PyTuple[object, ...], Optional[dict]]], int
]:
    """Parse framed records with their metadata; returns
    ``(frames, good_offset)`` where each frame is ``(op, values,
    meta-or-None)`` and ``good_offset`` is the byte length of the
    intact prefix.  A torn tail (short frame, short payload, or CRC
    mismatch) ends the parse — everything before it is trusted,
    everything after discarded."""
    frames: List[PyTuple[str, PyTuple[object, ...], Optional[dict]]] = []
    offset = 0
    header = _FRAME.size
    total = len(data)
    while offset + header <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + header
        end = start + length
        if end > total:
            break  # torn write: payload never fully landed
        payload = data[start:end]
        if crc32(payload) != crc:
            break  # corrupt frame: stop at the last good record
        try:
            record = json.loads(payload.decode("utf-8"))
            op, values = record[0], record[1]
        except (ValueError, UnicodeDecodeError, IndexError, KeyError, TypeError):
            break  # pragma: no cover - crc guards
        meta = record[2] if len(record) > 2 and isinstance(record[2], dict) else None
        frames.append((op, tuple(values), meta))
        offset = end
    return frames, offset


def _decode_records(data: bytes) -> PyTuple[List[PyTuple[str, PyTuple[object, ...]]], int]:
    """Parse framed records; returns ``(ops, good_offset)`` — the
    metadata-free view of :func:`_decode_frames` (session stamps
    dropped), which is all replay-to-rows and the schema log need."""
    frames, offset = _decode_frames(data)
    return [(op, values) for op, values, _meta in frames], offset


def _frame_at(
    data: bytes, offset: int
) -> Optional[
    PyTuple[int, PyTuple[str, PyTuple[object, ...], Optional[dict]]]
]:
    """Decode the frame starting exactly at ``offset``; returns
    ``(next_offset, (op, values, meta))`` or ``None`` if no valid
    frame starts there."""
    header = _FRAME.size
    if offset + header > len(data):
        return None
    length, crc = _FRAME.unpack_from(data, offset)
    if length > _MAX_FRAME_PAYLOAD:
        return None
    start = offset + header
    end = start + length
    if end > len(data):
        return None
    payload = data[start:end]
    if crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if (
        not isinstance(record, list)
        or len(record) not in (2, 3)
        or record[0] not in ("+", "-")
        or not isinstance(record[1], list)
        or (len(record) == 3 and not isinstance(record[2], dict))
    ):
        return None
    meta = record[2] if len(record) == 3 else None
    return end, (record[0], tuple(record[1]), meta)


@dataclass
class WalScan:
    """What a forward scan of one WAL file found.

    ``ops``/``good_offset`` are the trusted prefix — exactly what
    replay applies (replaying records *past* a gap would reorder the
    shard's history, so stranded records are reported, never applied).
    ``corrupt`` distinguishes the two failure shapes: a torn tail
    (``False`` — the expected residue of a crash mid-append, truncated
    quietly) versus mid-file corruption with valid frames after it
    (``True`` — unexpected, counted and surfaced).
    """

    ops: List[PyTuple[str, PyTuple[object, ...], Optional[dict]]] = field(
        default_factory=list
    )
    #: byte length of the intact prefix
    good_offset: int = 0
    #: bytes in the file beyond the intact prefix (0 for a clean WAL)
    tail_bytes: int = 0
    #: True iff valid frames exist after a bad region (mid-file corruption)
    corrupt: bool = False
    #: distinct bad regions the resync scan crossed
    corrupt_regions: int = 0
    #: valid frames stranded after the first bad region (reported, not replayed)
    stranded_records: int = 0


def _scan_records(data: bytes) -> WalScan:
    """Parse one WAL image: the trusted prefix plus a forward resync
    scan past any bad region, so a torn tail and mid-file corruption
    are told apart (module docstring: *WAL corruption accounting*)."""
    ops, good = _decode_frames(data)
    scan = WalScan(ops=ops, good_offset=good, tail_bytes=len(data) - good)
    offset = good + 1
    total = len(data)
    while offset < total:
        hit = _frame_at(data, offset)
        if hit is None:
            offset += 1
            continue
        # a valid frame after a bad region: mid-file corruption
        scan.corrupt = True
        scan.corrupt_regions += 1
        while hit is not None:
            offset = hit[0]
            scan.stranded_records += 1
            hit = _frame_at(data, offset)
        offset += 1
    return scan


def _snapshot_payload(
    name: str,
    attributes: Sequence[str],
    rows: List[list],
    epoch: int = 0,
    sessions: Optional[Dict[str, list]] = None,
) -> str:
    """Serialize one shard snapshot.  The ``crc`` covers the tuples
    serialization, so a bit-flip anywhere in the data is detected by
    recovery/``verify-store`` and the generation chain falls back.
    ``epoch`` stamps the schema version the rows belong to — recovery
    rolls a shard forward when its snapshot predates the manifest's
    epoch (pre-epoch snapshots parse as epoch 0).  ``sessions`` is the
    shard's exactly-once table (``{sid: [seq, op-or-null]}``): the WAL
    truncation that follows a snapshot discards the session-stamped
    frames, so the high-water marks must ride in the snapshot or a
    restart would forget them and re-apply a retried duplicate."""
    tuples_json = json.dumps(rows, separators=(",", ":"))
    sessions_part = ""
    if sessions:
        sessions_part = '"sessions":%s,' % json.dumps(
            sessions, separators=(",", ":"), sort_keys=True
        )
    return (
        '{"format":%d,"scheme":%s,"epoch":%d,%s"attributes":%s,"crc":%d,"tuples":%s}'
        % (
            _FORMAT,
            json.dumps(name),
            epoch,
            sessions_part,
            json.dumps(list(attributes)),
            crc32(tuples_json.encode("utf-8")),
            tuples_json,
        )
    )


def _schema_to_json(schema: DatabaseSchema) -> List[list]:
    """The catalog as JSON: ``[[name, [attr, ...]], ...]`` — what the
    manifest and every ``schema.log`` record embed."""
    return [[s.name, list(s.attributes.names)] for s in schema]


def _schema_from_json(data: object) -> DatabaseSchema:
    if not isinstance(data, list):
        raise ReproError(f"malformed schema serialization: {data!r}")
    return DatabaseSchema(
        [RelationScheme(name, AttributeSet(attrs)) for name, attrs in data]
    )


def _fds_to_json(fds: FDSet) -> List[list]:
    """FDs as JSON: ``[[[lhs...], [rhs...]], ...]`` (structural — the
    display form concatenates attribute names, which does not
    round-trip through the parser)."""
    return [[list(f.lhs.names), list(f.rhs.names)] for f in fds]


def _fds_from_json(data: object) -> FDSet:
    if not isinstance(data, list):
        raise ReproError(f"malformed FD serialization: {data!r}")
    return FDSet(
        FD(AttributeSet(lhs), AttributeSet(rhs)) for lhs, rhs in data
    )


def _parse_snapshot(data: bytes, name: str) -> dict:
    """Parse and validate one snapshot image; raises
    :class:`ReproError` on any structural or CRC mismatch.  Snapshots
    written before the ``crc`` field are accepted without the check."""
    try:
        snap = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ReproError(f"unparsable snapshot: {exc}") from None
    if not isinstance(snap, dict) or snap.get("format") != _FORMAT:
        raise ReproError(f"unsupported snapshot format {snap.get('format')!r}"
                         if isinstance(snap, dict) else "snapshot is not an object")
    if snap.get("scheme") != name:
        raise ReproError(
            f"snapshot is for scheme {snap.get('scheme')!r}, not {name!r}"
        )
    tuples = snap.get("tuples")
    if not isinstance(tuples, list) or not all(isinstance(r, list) for r in tuples):
        raise ReproError("snapshot tuples are malformed")
    crc = snap.get("crc")
    if crc is not None:
        tuples_json = json.dumps(tuples, separators=(",", ":"))
        if crc32(tuples_json.encode("utf-8")) != crc:
            raise ReproError("snapshot CRC mismatch (bit rot or torn write)")
    sessions = snap.get("sessions")
    if sessions is not None and not isinstance(sessions, dict):
        raise ReproError("snapshot session table is malformed")
    return snap


def _sessions_from_snapshot(raw: object) -> Dict[str, dict]:
    """Rebuild a shard's session table from its snapshot field
    (``{sid: [seq, op-or-null]}``).  ``op`` is the original effectful
    operation's kind — enough to reconstruct the outcome a duplicate
    must be answered with; ``null`` marks a session whose last
    operation changed nothing (safe to re-execute, so no outcome needs
    to survive)."""
    table: Dict[str, dict] = {}
    if not isinstance(raw, dict):
        return table
    for sid, entry in raw.items():
        try:
            seq = int(entry[0])
            kind = entry[1]
        except (TypeError, ValueError, IndexError):
            continue  # pragma: no cover - snapshot CRC guards
        if kind not in ("+", "-", None):
            continue  # pragma: no cover - defensive
        table[str(sid)] = {
            "seq": seq, "kind": kind, "result": None, "ticket": None
        }
    return table


def _replay_session_frame(
    table: Dict[str, dict], op: str, meta: Optional[dict]
) -> None:
    """Fold one WAL frame's session stamp into a rebuilding table.
    Frames land in WAL order, so the last stamp per session wins;
    ``>=`` (not ``>``) because a re-executed same-seq operation (the
    original changed nothing) legitimately re-logs its sequence."""
    if not meta:
        return
    sid = meta.get("sid")
    seq = meta.get("seq")
    if sid is None or not isinstance(seq, int):
        return  # pragma: no cover - defensive
    entry = table.get(str(sid))
    if entry is None or seq >= entry["seq"]:
        table[str(sid)] = {
            "seq": seq, "kind": op, "result": None, "ticket": None
        }


def _sessions_to_snapshot(table: Dict[str, dict]) -> Dict[str, list]:
    """The persistent image of a session table: every high-water mark
    survives; a session whose recorded operation was effectful keeps
    its kind so a post-restart duplicate gets a truthful answer."""
    return {
        sid: [entry["seq"], entry.get("kind")]
        for sid, entry in table.items()
    }


class _ShardWal:
    """One scheme's append-only WAL file plus its staged-record buffer.

    Staging and draining are coordinated by the owning service's
    locks; this class only knows about bytes and files.  The file
    handle is opened in append mode once and kept; truncation (after a
    snapshot) goes through :func:`os.truncate`, which co-operates with
    ``O_APPEND`` writes.
    """

    __slots__ = (
        "path",
        "io",
        "_file",
        "pending",
        "pending_records",
        "records_since_snapshot",
        "io_lock",
    )

    def __init__(self, path: pathlib.Path, io: StoreIO):
        self.path = path
        self.io = io
        self._file = None
        self.pending: List[bytes] = []
        self.pending_records = 0
        self.records_since_snapshot = 0
        # serializes drain+write+fsync (and truncate) on THIS file;
        # commits of different shards deliberately do not share a lock
        self.io_lock = threading.Lock()

    def _handle(self):
        if self._file is None:
            # unbuffered: one write() syscall per drained blob, and no
            # Python-side buffer sitting between a commit and its fsync
            self._file = open(self.path, "ab", buffering=0)
        return self._file

    def stage(self, record: bytes) -> None:
        self.pending.append(record)
        self.pending_records += 1
        self.records_since_snapshot += 1

    def take_pending(self) -> PyTuple[bytes, int]:
        """Drain the staged buffer (records join the next write in
        stage order — the per-shard WAL order is the apply order)."""
        if not self.pending:
            return b"", 0
        blob = b"".join(self.pending)
        count = self.pending_records
        self.pending = []
        self.pending_records = 0
        return blob, count

    def restage_front(self, blob: bytes, count: int) -> None:
        """Put a drained-but-unwritten blob back at the *front* of the
        buffer (a failed commit must not reorder the shard's history
        behind records staged while it was failing)."""
        self.pending.insert(0, blob)
        self.pending_records += count

    def size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def write(self, blob: bytes, fault: Optional[FaultHook]) -> None:
        """Append a drained blob, exercising the torn-write crash
        point halfway through when a hook is installed."""
        handle = self._handle()
        if fault is not None and len(blob) > 1:
            half = len(blob) // 2
            self.io.wal_write(handle, blob[:half], self.path)
            handle.flush()
            fault("commit.partial")
            self.io.wal_write(handle, blob[half:], self.path)
        else:
            self.io.wal_write(handle, blob, self.path)
        handle.flush()

    def fsync(self) -> None:
        self.io.wal_fsync(self._handle(), self.path)

    def rollback_to(self, size: int) -> None:
        """Best-effort cut back to ``size`` bytes — removes any
        partial append a failed commit left, so a retry (or a later
        probe) re-appends the full blob instead of stacking a corrupt
        half-frame under it."""
        try:
            self._handle().flush()
            if self.size() > size:
                self.io.truncate(self.path, size)
        except OSError:
            # the disk is already misbehaving; recovery's torn-frame
            # handling deals with whatever landed
            pass

    def truncate(self) -> None:
        # _handle() also creates the file when no record was ever
        # appended (a snapshot of an unlogged shard must still leave
        # an empty WAL behind for the next open)
        handle = self._handle()
        handle.flush()
        self.io.truncate(self.path, 0)
        self.records_since_snapshot = 0

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class DurableShardedService(WindowQueryAPI):
    """A :class:`~repro.weak.sharded.ShardedWeakInstanceService` whose
    state survives restarts: per-shard WAL + snapshots (module
    docstring has the protocol).

    Construct over a directory: an empty or missing directory
    initializes fresh files; an existing one **recovers** — snapshot
    plus WAL-tail replay per shard, then one atomic load, no chase.
    ``auto_commit=True`` (the default, for single-threaded and script
    use) makes every mutation durable before it returns; the
    multi-client server passes ``auto_commit=False`` and drives
    :meth:`commit` itself from its group-commit thread.
    """

    DEFAULT_SNAPSHOT_INTERVAL = 4096
    #: snapshot files kept per shard (the newest plus K-1 predecessors
    #: in a rename chain) — the rollback depth of ``repair``
    DEFAULT_SNAPSHOT_GENERATIONS = 3
    #: transient-I/O-error retries before a shard degrades/quarantines
    DEFAULT_IO_RETRIES = 2
    #: first retry backoff in seconds (doubles per attempt)
    DEFAULT_IO_BACKOFF = 0.005
    #: retry jitter as a fraction of each backoff step: the sleep is
    #: ``backoff * 2**attempt * (1 + jitter * U[0,1))`` — without it,
    #: shards that failed together retry together and stampede a
    #: recovering disk in lockstep
    DEFAULT_IO_JITTER = 0.5

    def __init__(
        self,
        schema,
        fds: Union[FDSet, Iterable[FD], str],
        root: Union[str, os.PathLike],
        report: Optional[IndependenceReport] = None,
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
        auto_commit: bool = True,
        fault_hook: Optional[FaultHook] = None,
        io: Optional[StoreIO] = None,
        snapshot_generations: int = DEFAULT_SNAPSHOT_GENERATIONS,
        io_retries: int = DEFAULT_IO_RETRIES,
        io_backoff: float = DEFAULT_IO_BACKOFF,
        io_jitter: float = DEFAULT_IO_JITTER,
        rng: Optional[random.Random] = None,
        **service_options,
    ):
        self.root = pathlib.Path(root)
        self.snapshot_interval = snapshot_interval
        self.auto_commit = auto_commit
        self.fault_hook = fault_hook
        self.io = io if io is not None else StoreIO()
        self.snapshot_generations = max(1, snapshot_generations)
        self.io_retries = io_retries
        self.io_backoff = io_backoff
        self.io_jitter = io_jitter
        # injectable so the fault-matrix tests stay reproducible: pass
        # a seeded random.Random (or io_jitter=0) to pin the schedule
        self._rng = rng if rng is not None else random.Random()
        self.stats = self._make_stats()
        # retained for evolved-store reopens: the manifest's catalog
        # wins over the constructor's, and the rebuilt inner service
        # must keep the caller's tuning options
        self._service_options = dict(service_options)
        self._inner = ShardedWeakInstanceService(
            schema, fds, report=report, stats=self.stats, **service_options
        )
        self.schema = self._inner.schema
        self.fds = self._inner.fds
        self.report = self._inner.report
        self._crashed = False
        # lock order (outer to inner): shard lock -> _io_lock -> _stage_lock;
        # _commit_cond shares _stage_lock's mutex domain via its own lock
        self._locks: Dict[str, threading.RLock] = {
            name: threading.RLock() for name in self._inner.shard_names()
        }
        self._io_lock = threading.RLock()
        self._stage_lock = threading.Lock()
        self._commit_cond = threading.Condition()
        self._staged_gen = 0
        self._committed_gen = -1
        self._wals: Dict[str, _ShardWal] = {}
        self._dirty: List[str] = []
        # per-shard overrides installed by failover: a promoted shard's
        # files live in the replica's directory and go through the
        # replica's StoreIO; everything else stays on the root store
        self._shard_dirs: Dict[str, pathlib.Path] = {}
        self._shard_ios: Dict[str, StoreIO] = {}
        # shards that opened quarantined with no readable state at all
        # (every snapshot generation corrupt): in-memory rows are NOT
        # authoritative for these — failover must rebuild from a replica
        self._void_shards: set = set()
        # exactly-once session tables, one per shard (Theorem 3 again:
        # a session is pinned to the shard its writes route to, so the
        # dedup state replicates and fails over with that shard's chain)
        self._sessions: Dict[str, Dict[str, dict]] = {}
        self._shard_status: Dict[str, str] = {
            name: SHARD_SERVING for name in self._inner.shard_names()
        }
        self._shard_errors: Dict[str, str] = {}
        #: the manifest's schema epoch (0 for never-evolved stores)
        self._manifest_epoch = 0
        #: the newest ``schema.log`` record, for recovery roll-forward
        self._pending_evolution: Optional[Dict[str, object]] = None
        existing = (self.root / MANIFEST_NAME).exists()
        self._init_layout(existing)
        if existing:
            self._recover()

    def _make_stats(self) -> DurableServiceStats:
        """Stats-object factory — the replicated subclass substitutes
        its extended dataclass before the inner service binds it."""
        return DurableServiceStats()

    # -- layout and recovery ----------------------------------------------------

    def _shard_dir(self, name: str) -> pathlib.Path:
        override = self._shard_dirs.get(name)
        if override is not None:
            return override
        return self.root / "shards" / name

    def _io_for(self, name: str) -> StoreIO:
        """The store backing one shard's files — the root store unless
        a failover re-pointed the shard at a promoted replica."""
        return self._shard_ios.get(name, self.io)

    def wal_path(self, name: str) -> pathlib.Path:
        return self._shard_dir(name) / WAL_NAME

    def snapshot_path(self, name: str, generation: int = 0) -> pathlib.Path:
        """Generation 0 is the newest snapshot (``snapshot.json``);
        ``k > 0`` is the k-th predecessor in the rename chain."""
        base = self._shard_dir(name) / SNAPSHOT_NAME
        if generation == 0:
            return base
        return base.with_name(f"{SNAPSHOT_NAME}.{generation}")

    def schema_log_path(self) -> pathlib.Path:
        return self.root / SCHEMA_LOG_NAME

    def _write_manifest(
        self, schema: DatabaseSchema, fds: FDSet, epoch: int
    ) -> None:
        """Rewrite the manifest atomically (tmp + rename).  For an
        evolution this replace IS the commit point: before it the store
        recovers the old epoch, after it the new one."""
        names = sorted(s.name for s in schema)
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "format": _FORMAT,
                    "schemes": names,
                    "epoch": epoch,
                    "schema": _schema_to_json(schema),
                    "fds": _fds_to_json(fds),
                },
                indent=2,
            )
        )
        self.io.replace(tmp, self.root / MANIFEST_NAME)

    def _read_schema_log(self) -> List[Dict[str, object]]:
        """Parse ``schema.log``: one dict per committed evolution, in
        apply order.  A torn tail (crash mid-append) ends the parse —
        a record not fully on disk was never committed (the manifest
        replace happens strictly after the log fsync)."""
        path = self.schema_log_path()
        if not path.exists():
            return []
        ops, _good = _decode_records(self.io.read_bytes(path))
        records: List[Dict[str, object]] = []
        for op, values in ops:
            if op != "schema" or not values:
                continue  # pragma: no cover - foreign record, skip
            try:
                record = json.loads(values[0])
            except (TypeError, ValueError):  # pragma: no cover - crc guards
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def _init_layout(self, existing: bool) -> None:
        names = sorted(self._inner.shard_names())
        if existing:
            manifest_path = self.root / MANIFEST_NAME
            try:
                manifest = json.loads(manifest_path.read_text())
            except ValueError as exc:
                raise ReproError(
                    f"corrupt durable manifest {manifest_path}: {exc}; "
                    f"run `repro verify-store {self.root}` to inspect "
                    f"the store"
                ) from None
            if manifest.get("format") != _FORMAT:
                raise ReproError(
                    f"unsupported durable format {manifest.get('format')!r} "
                    f"in {self.root}"
                )
            epoch = int(manifest.get("epoch", 0))
            self._manifest_epoch = epoch
            if epoch > 0 and manifest.get("schema"):
                # the store evolved past the catalog it was created
                # with: the manifest's schema + FDs are authoritative,
                # and the inner service is rebuilt over them (the
                # constructor's schema only names the original epoch)
                schema = _schema_from_json(manifest["schema"])
                fds = _fds_from_json(manifest.get("fds", []))
                if schema != self.schema or fds != self.fds:
                    self._inner = ShardedWeakInstanceService(
                        schema, fds, stats=self.stats, **self._service_options
                    )
                    self.schema = self._inner.schema
                    self.fds = self._inner.fds
                    self.report = self._inner.report
                    self._locks = {
                        name: threading.RLock()
                        for name in self._inner.shard_names()
                    }
                    self._shard_status = {
                        name: SHARD_SERVING
                        for name in self._inner.shard_names()
                    }
                    self._shard_errors = {}
                self._inner.schema_version = epoch
                names = sorted(self._inner.shard_names())
                if sorted(manifest.get("schemes", [])) != names:
                    raise ReproError(
                        f"durable manifest {manifest_path} is inconsistent: "
                        f"schemes {manifest.get('schemes')} vs catalog "
                        f"{names}"
                    )
                for name in names:
                    # a migrated-in scheme's directory may not exist yet
                    # (crash between manifest commit and finalize)
                    self._shard_dir(name).mkdir(parents=True, exist_ok=True)
                records = self._read_schema_log()
                if records:
                    self._pending_evolution = records[-1]
            elif sorted(manifest.get("schemes", [])) != names:
                raise ReproError(
                    f"durable directory {self.root} was written for schemes "
                    f"{manifest.get('schemes')}, not {names}"
                )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            for name in names:
                self._shard_dir(name).mkdir(parents=True, exist_ok=True)
            self._write_manifest(self.schema, self.fds, 0)
        for name in names:
            self._wals[name] = _ShardWal(self.wal_path(name), self._io_for(name))

    def _load_snapshot_rows(
        self, name: str
    ) -> PyTuple[
        Optional[Dict[PyTuple[object, ...], None]],
        Optional[int],
        int,
        int,
        Dict[str, dict],
    ]:
        """Walk the shard's snapshot generations newest-first and
        return ``(rows, generation, bad_generations, epoch, sessions)``
        — ``rows`` from the newest generation that parses and passes
        its CRC, or ``(None, None, bad, 0, {})`` when no generation is
        readable (no snapshot at all, or every one corrupt).
        ``epoch`` is the schema version the snapshot was taken under
        (0 for pre-evolution snapshot files); ``sessions`` the
        exactly-once table the snapshot carried."""
        bad = 0
        for generation in range(self.snapshot_generations):
            path = self.snapshot_path(name, generation)
            if not path.exists():
                continue
            try:
                snap = _parse_snapshot(self._io_for(name).read_bytes(path), name)
            except (OSError, ReproError) as exc:
                bad += 1
                _log.warning("bad snapshot %s (generation %d): %s", path, generation, exc)
                continue
            rows: Dict[PyTuple[object, ...], None] = {}
            for values in snap["tuples"]:
                rows[tuple(values)] = None
            sessions = _sessions_from_snapshot(snap.get("sessions"))
            return rows, generation, bad, int(snap.get("epoch", 0)), sessions
        return None, None, bad, 0, {}

    def _read_wal(self, name: str, wal: _ShardWal) -> WalScan:
        """Scan the shard's WAL, count mid-file corruption (module
        docstring: *WAL corruption accounting*), and cut the file back
        to its intact prefix."""
        if not wal.path.exists():
            return WalScan()
        scan = _scan_records(wal.io.read_bytes(wal.path))
        if scan.corrupt:
            self.stats.wal_corrupt_frames += scan.corrupt_regions
            self.stats.wal_truncated_bytes += scan.tail_bytes
            _log.warning(
                "WAL %s: mid-file corruption — %d bad region(s), %d intact "
                "record(s) stranded after it, %d byte(s) dropped (replay "
                "keeps the intact prefix; `repro verify-store` shows the "
                "damage)",
                wal.path, scan.corrupt_regions, scan.stranded_records,
                scan.tail_bytes,
            )
        if scan.tail_bytes:
            # torn or corrupt tail: drop it before appending — anything
            # written after it would hide later records
            wal.io.truncate(wal.path, scan.good_offset)
        return scan

    def _dir_rows(self, name: str) -> Dict[PyTuple[object, ...], None]:
        """One shard directory's recovered value-tuples (newest good
        snapshot generation + WAL-tail replay) — also works for a
        *retired* directory no longer in the manifest (the
        roll-forward source capture)."""
        rows, _generation, _bad, _epoch, _sessions = self._load_snapshot_rows(name)
        if rows is None:
            rows = {}
        wal = self._wals.get(name)
        throwaway = wal is None
        if throwaway:
            wal = _ShardWal(self.wal_path(name), self._io_for(name))
        try:
            scan = self._read_wal(name, wal)
        finally:
            if throwaway:
                wal.close()
        for op, values, _meta in scan.ops:
            if op == "+":
                rows[values] = None
            else:
                rows.pop(values, None)
        return rows

    def _snapshot_epoch(self, name: str) -> Optional[int]:
        """The epoch of the shard's newest readable snapshot, or
        ``None`` when no generation is readable."""
        _rows, generation, _bad, epoch, _sessions = self._load_snapshot_rows(name)
        return None if generation is None else epoch

    def _roll_forward(
        self, record: Dict[str, object]
    ) -> Dict[str, List[Dict[str, object]]]:
        """Re-apply the last committed evolution's migration to every
        shard whose on-disk snapshot predates the manifest epoch.

        The crash window this covers is between the manifest replace
        (the commit point) and the finalize step that snapshots every
        migrated shard: the retired source directories are still on
        disk (finalize removes them only after the migrated snapshots
        are durable), so the deterministic ``migrate_relations``
        transform re-derives exactly the rows the crashed process had
        built.  Returns ``{scheme: attribute-keyed rows}`` for the
        rolled-forward shards only."""
        try:
            op = evolution_op_from_json(record["op"])
            old_schema = _schema_from_json(record["old_schema"])
        except (KeyError, ReproError) as exc:  # pragma: no cover - defensive
            _log.warning("unusable schema.log record (%s); skipping "
                         "roll-forward", exc)
            return {}
        sources = list(op.structural_schemes(old_schema))
        if not sources:
            return {}  # cover-only op (add-fd/drop-fd): rows unchanged
        targets = sorted(
            op.migrate_relations(old_schema, {s: [] for s in sources})
        )
        behind = []
        for name in targets:
            if name not in self._wals:
                continue  # pragma: no cover - defensive
            epoch = self._snapshot_epoch(name)
            if epoch is None or epoch < self._manifest_epoch:
                behind.append(name)
        if not behind:
            return {}
        capture: Dict[str, List[Dict[str, object]]] = {}
        for src in sources:
            attrs = old_schema[src].attributes.names
            capture[src] = [
                dict(zip(attrs, values)) for values in self._dir_rows(src)
            ]
        migrated = op.migrate_relations(old_schema, capture)
        self.stats.evolution_rollforwards += len(behind)
        _log.warning(
            "recovery roll-forward to epoch %d: shard(s) %s re-migrated "
            "from the retired sources (%s)",
            self._manifest_epoch, ", ".join(behind), op.describe(),
        )
        return {name: migrated.get(name, []) for name in behind}

    def _recover(self) -> None:
        """Snapshot + WAL-tail replay per shard, then one atomic load.

        Replay is pure set arithmetic on value tuples; the single
        :meth:`~repro.weak.sharded.ShardedWeakInstanceService.load`
        that follows builds the shard indexes, and every tableau is
        rebuilt lazily by the bulk kernel when first queried — the
        recovery path never chases.  A shard whose newest snapshot is
        corrupt falls back to the next good generation (logged and
        counted — acknowledged records may roll back, which beats the
        alternative of not opening at all); a shard with *no* good
        generation but corrupt ones opens quarantined for ``repair``.

        On an evolved store, shards whose snapshot predates the
        manifest epoch are **rolled forward** first
        (:meth:`_roll_forward`), then snapshotted at the new epoch and
        the retired source directories removed — the finalize the
        crashed evolution never completed.
        """
        relations: Dict[str, List[Dict[str, object]]] = {}
        replayed = 0
        snapshot_loads = 0
        rolled: Dict[str, List[Dict[str, object]]] = {}
        if self._pending_evolution is not None and (
            int(self._pending_evolution.get("epoch", 0)) == self._manifest_epoch
        ):
            rolled = self._roll_forward(self._pending_evolution)
        for name, wal in self._wals.items():
            # WAL and snapshot values are in canonical attribute order
            # (Tuple.values), NOT declared column order — rebuild rows
            # as attribute-keyed mappings so the load cannot permute
            attr_names = self._inner._shard(name).scheme.attributes.names
            tmp = self._shard_dir(name) / _SNAPSHOT_TMP
            if tmp.exists():  # crash before the snapshot rename: discard
                tmp.unlink()
            if name in rolled:
                relations[name] = rolled[name]
                continue
            rows, generation, bad, _epoch, sessions = self._load_snapshot_rows(name)
            if rows is None and bad:
                # every generation corrupt: open the shard quarantined
                # (the healthy shards keep serving; repair can retry
                # once the operator restores a snapshot file — or a
                # failover can rebuild from a replica's chain, which is
                # why the shard is remembered as void: its in-memory
                # rows are empty, not authoritative)
                self._set_status(
                    name,
                    SHARD_QUARANTINED,
                    f"no readable snapshot generation ({bad} corrupt)",
                )
                self._void_shards.add(name)
                relations[name] = []
                continue
            if rows is None:
                rows = {}
            else:
                snapshot_loads += 1
                if generation > 0:
                    self.stats.snapshot_fallbacks += 1
                    _log.warning(
                        "shard %s: snapshot generation 0 unreadable; "
                        "recovered from generation %d (acknowledged "
                        "records after that snapshot are lost)",
                        name, generation,
                    )
            scan = self._read_wal(name, wal)
            for op, values, meta in scan.ops:
                if op == "+":
                    rows[values] = None
                else:
                    rows.pop(values, None)
                _replay_session_frame(sessions, op, meta)
            if sessions:
                self._sessions[name] = sessions
                self.stats.session_records += len(sessions)
            replayed += len(scan.ops)
            wal.records_since_snapshot = len(scan.ops)
            relations[name] = [
                dict(zip(attr_names, values)) for values in rows
            ]
        self.stats.recoveries += 1
        self.stats.snapshot_loads += snapshot_loads
        self.stats.wal_records_replayed += replayed
        if any(relations.values()):
            self._inner.load(DatabaseState(self.schema, relations))
        # finalize an interrupted evolution: epoch-stamped snapshots for
        # the rolled-forward shards first, retired directories last (the
        # same write order the crashed evolve was following)
        for name in sorted(rolled):
            self._snapshot_locked(name)
        if self._manifest_epoch > 0:
            shards_root = self.root / "shards"
            if shards_root.is_dir():
                for child in sorted(shards_root.iterdir()):
                    if child.is_dir() and child.name not in self._wals:
                        shutil.rmtree(child, ignore_errors=True)

    # -- crash discipline and per-shard health -----------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _ensure_open(self) -> None:
        if self._crashed:
            raise DurableUnavailableError(
                "durable service crashed; re-open the directory with a "
                "fresh DurableShardedService"
            )

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _latch_crash(self) -> None:
        self._crashed = True
        with self._commit_cond:
            self._commit_cond.notify_all()

    def shard_status(self, name: str) -> str:
        """One shard's health state (:data:`SHARD_SERVING` /
        :data:`SHARD_DEGRADED` / :data:`SHARD_QUARANTINED` /
        :data:`SHARD_REPAIRING`)."""
        self._inner._shard(name)  # unknown-scheme error, same as reads
        return self._shard_status[name]

    def health(self) -> Dict[str, object]:
        """The per-shard status surface: overall status (``serving``
        iff every shard serves and the service has not crashed) plus
        each shard's state, last error, the schema epoch, and any
        in-flight migration."""
        shards = dict(self._shard_status)
        if self._crashed:
            status = "crashed"
        elif all(s == SHARD_SERVING for s in shards.values()):
            status = "serving"
        else:
            status = "degraded"
        return {
            "status": status,
            "shards": shards,
            "errors": dict(self._shard_errors),
            "primaries": {
                name: self._inner.primary_of(name) for name in shards
            },
            "epoch": self._inner.schema_version,
            "migration": self._inner.migration_status(),
        }

    def _set_status(self, name: str, status: str, reason: str = "") -> None:
        previous = self._shard_status[name]
        self._shard_status[name] = status
        if reason:
            self._shard_errors[name] = reason
        elif status == SHARD_SERVING:
            self._shard_errors.pop(name, None)
        if status != previous:
            if status == SHARD_QUARANTINED:
                self.stats.shards_quarantined += 1
            elif status == SHARD_DEGRADED:
                self.stats.shards_degraded += 1
            elif status == SHARD_SERVING and previous in (
                SHARD_DEGRADED, SHARD_QUARANTINED, SHARD_REPAIRING
            ):
                self.stats.shards_recovered += 1
        # reads must route around quarantined/repairing shards (the
        # planner's closure guard decides which plans survive); a
        # degraded shard is read-only but still readable
        self._inner.set_unavailable(
            {
                n: s
                for n, s in self._shard_status.items()
                if s in (SHARD_QUARANTINED, SHARD_REPAIRING)
            }
        )

    def _shard_fault(self, name: str, exc: OSError) -> ShardQuarantinedError:
        """Record a persistent I/O failure on one shard: ENOSPC
        degrades to read-only (recovery probes may heal it), anything
        else quarantines (``repair`` heals it).  Returns the typed
        error for the caller to raise — the rest of the service keeps
        serving."""
        if getattr(exc, "errno", None) == _errno.ENOSPC:
            status = SHARD_DEGRADED
        else:
            status = SHARD_QUARANTINED
        reason = f"{type(exc).__name__}: {exc}"
        self._set_status(name, status, reason)
        _log.warning("shard %s %s after persistent I/O failure: %s",
                     name, status, reason)
        return ShardQuarantinedError(name, status, reason)

    def _check_writable(self, name: str) -> None:
        """Gate one shard's write path on its health.  A degraded
        (read-only) shard gets a recovery probe first — if the disk
        took the backlog, the shard returns to serving and the write
        proceeds."""
        status = self._shard_status.get(name)
        if status is None:
            # unknown (or evolved-away) scheme: raise the canonical
            # unknown-scheme error, same as the read path
            self._inner._shard(name)
        if status == SHARD_SERVING:
            return
        if status == SHARD_DEGRADED and self.probe(name):
            return
        raise ShardQuarantinedError(
            name, self._shard_status[name], self._shard_errors.get(name, "")
        )

    def probe(self, name: str) -> bool:
        """Recovery probe for a degraded shard: try to flush its
        restaged WAL backlog (with the usual retry budget).  Success
        returns the shard to serving; failure leaves it degraded (or
        quarantines it, if the error stopped being ENOSPC)."""
        if self._shard_status[name] == SHARD_SERVING:
            return True
        if self._shard_status[name] != SHARD_DEGRADED:
            return False
        with self._locks[name]:
            if self._shard_status[name] != SHARD_DEGRADED:
                return self._shard_status[name] == SHARD_SERVING
            try:
                self._commit_wal(name, self._wals[name])
            except ShardQuarantinedError:
                return False
            self._set_status(name, SHARD_SERVING)
            _log.info("shard %s recovered by probe (backlog flushed)", name)
            return True

    # -- staging and group commit ------------------------------------------------

    def shard_lock(self, name: str) -> threading.RLock:
        """The lock serializing writes (and snapshot reads) of one
        shard — the front end's per-shard write discipline."""
        return self._locks[name]

    def _stage(self, name: str, record: bytes) -> int:
        """Buffer one encoded record for the next group commit;
        returns the commit ticket that will cover it.  Caller holds
        the shard lock, so per-shard WAL order is apply order."""
        with self._stage_lock:
            wal = self._wals[name]
            if not wal.pending:
                self._dirty.append(name)
            wal.stage(record)
            self.stats.wal_records_appended += 1
            return self._staged_gen

    def _restage(self, name: str, wal: _ShardWal, blob: bytes, count: int) -> None:
        """Return a drained-but-undurable blob to the front of the
        buffer and re-mark the shard dirty, so a probe, repair, or the
        next commit attempt sees it (nothing acknowledged is ever
        dropped from memory while the shard is sick)."""
        with self._stage_lock:
            wal.restage_front(blob, count)
            if name not in self._dirty:
                self._dirty.append(name)

    def _ship(self, name: str, blob: bytes, base_offset: int, count: int) -> None:
        """Replication seam: called after one WAL's blob is fsynced,
        still under that WAL's I/O lock.  The base class has no
        replicas — :class:`repro.weak.replication.
        ReplicatedShardedService` overrides this to ship the frames."""

    def _on_snapshot(self, name: str, payload: str) -> None:
        """Replication seam: called after a shard's snapshot install
        truncated its WAL (under the WAL's I/O lock) — replicas must
        install the same snapshot to stay aligned with the primary's
        now-empty WAL."""

    def _commit_wal(self, name: str, wal: _ShardWal) -> PyTuple[int, int]:
        """Drain, write, and fsync one WAL as a single critical
        section under its I/O lock; returns ``(bytes, records)``.

        The drain happens *inside* the lock, so the invariant every
        committer relies on holds: whoever acquires the lock and finds
        the buffer empty knows the previous holder already fsynced —
        an empty buffer under the lock means "durable", never
        "drained but still in flight".

        An :class:`OSError` from the disk is retried with bounded
        exponential backoff, each attempt first cutting the file back
        to its pre-attempt length (a half-written blob must not stack
        under its own retry).  A persistent failure restages the blob,
        degrades or quarantines the shard (:meth:`_shard_fault`), and
        raises :class:`~repro.exceptions.ShardQuarantinedError` — it
        never latches the whole service."""
        with wal.io_lock:
            with self._stage_lock:
                blob, count = wal.take_pending()
            if not blob:
                return 0, 0
            self._fault("commit.begin")
            attempt = 0
            while True:
                start = wal.size()
                try:
                    wal.write(blob, self.fault_hook)
                    self._fault("commit.pre-fsync")
                    wal.fsync()
                    break
                except OSError as exc:
                    wal.rollback_to(start)
                    if attempt >= self.io_retries:
                        self._restage(name, wal, blob, count)
                        raise self._shard_fault(name, exc) from exc
                    self.stats.io_retries += 1
                    # jittered exponential backoff: shards that failed
                    # together must not retry in lockstep against the
                    # same recovering disk (satellite of PR 10)
                    time.sleep(
                        self.io_backoff
                        * (2 ** attempt)
                        * (1.0 + self.io_jitter * self._rng.random())
                    )
                    attempt += 1
            if attempt:
                # the disk answered again: a degraded shard that just
                # flushed its backlog through here is healthy
                _log.info("shard %s WAL commit succeeded after %d retr%s",
                          name, attempt, "y" if attempt == 1 else "ies")
            self.stats.wal_fsyncs += 1
            # ship while still holding the WAL's I/O lock: frames reach
            # every replica in exactly WAL order, and (sync mode) before
            # the covering tickets release — acked ⟹ durable-on-quorum
            self._ship(name, blob, start, count)
            self._fault("commit.post-fsync")
        return len(blob), count

    def commit(self) -> Optional[int]:
        """Global group commit: write and fsync every staged record,
        then release the covered tickets.  Returns the committed
        generation (``None`` when nothing was staged).  Serialized
        against other global commits and snapshots by the global I/O
        lock, and against per-shard :meth:`commit_shards` calls by
        each WAL's own I/O lock — a WAL drained by a concurrent
        per-shard commit is re-visited here only to synchronize on its
        lock (empty drain), which is exactly what makes the returned
        generation mean *durable* rather than merely *drained*.
        Staging continues concurrently and lands in the next
        generation.
        """
        self._ensure_open()
        failure: Optional[ShardQuarantinedError] = None
        try:
            with self._io_lock:
                with self._stage_lock:
                    # a name may have been retired by a concurrent
                    # evolution's finalize — its records are already
                    # superseded by the migrated epoch-stamped snapshot
                    dirty = [
                        (name, self._wals[name])
                        for name in self._dirty
                        if name in self._wals
                    ]
                    self._dirty = []
                    gen = self._staged_gen
                    if dirty:
                        self._staged_gen += 1
                if not dirty:
                    return None
                written = 0
                records = 0
                for name, wal in dirty:
                    try:
                        wrote, count = self._commit_wal(name, wal)
                    except ShardQuarantinedError as exc:
                        # that shard's records are restaged; every other
                        # dirty shard still commits — the failure domain
                        # is the shard, not the commit
                        failure = failure if failure is not None else exc
                        continue
                    written += wrote
                    records += count
                if records:
                    self.stats.wal_commits += 1
                    self.stats.wal_bytes_written += written
        except BaseException:
            self._latch_crash()
            raise
        with self._commit_cond:
            self._committed_gen = gen
            self._commit_cond.notify_all()
        if failure is not None:
            # raised only after the healthy shards' records are durable
            # and their waiters released; callers on the sick shard must
            # treat their operation as not-durable (quarantine supersedes
            # the ticket: the server acks per shard, never through this)
            raise failure
        return gen

    def commit_shards(self, names: Iterable[str]) -> None:
        """Per-shard synchronous commit: drain, write, and fsync the
        named shards' staged records in the *calling* thread.  When it
        returns, every record staged on these shards before the call
        is durable (written by this call, or by whichever concurrent
        committer beat it to the WAL's I/O lock).

        This is the independence argument applied to the log itself:
        Theorem 3 says no cross-shard invariant constrains the
        interleaving, so shards need no global commit order and no
        shared committer — workers of the front end commit the shards
        they own concurrently, overlapping their fsyncs."""
        self._ensure_open()
        written = 0
        records = 0
        failure: Optional[ShardQuarantinedError] = None
        for name in sorted(set(names)):
            wal = self._wals.get(name)
            if wal is None:
                # retired by an evolution's finalize: the shard's data
                # (mid-migration journal included) is durable in the
                # new epoch's snapshot, so there is nothing to commit
                continue
            try:
                wrote, count = self._commit_wal(name, wal)
            except ShardQuarantinedError as exc:
                failure = failure if failure is not None else exc
                continue
            except BaseException:
                self._latch_crash()
                raise
            written += wrote
            records += count
        if records:
            self.stats.wal_commits += 1
            self.stats.wal_bytes_written += written
        if failure is not None:
            raise failure

    def wait_durable(self, ticket: int, timeout: Optional[float] = None) -> bool:
        """Block until the group commit covering ``ticket`` has fsynced
        (returns ``True``), the service crashes
        (:class:`DurableUnavailableError`), or the timeout elapses
        (returns ``False``).  Callers must not hold shard locks —
        waiting is what lets other writers fill the next batch."""
        with self._commit_cond:
            while self._committed_gen < ticket and not self._crashed:
                if not self._commit_cond.wait(timeout):
                    return False
        if self._committed_gen < ticket:
            raise DurableUnavailableError(
                "durable service crashed before the commit completed"
            )
        return True

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self, name: Optional[str] = None) -> None:
        """Write a snapshot of one shard (or all) and truncate its WAL.

        Takes the shard lock, commits the shard's still-staged records
        first (so the snapshot never reflects an operation the WAL
        lacks — the suffix-loss invariant recovery relies on), then
        writes tmp → fsync → rename → directory fsync → truncate.
        """
        self._ensure_open()
        names = [name] if name is not None else sorted(self._wals)
        for shard_name in names:
            with self._locks[shard_name]:
                self._check_writable(shard_name)
                # this shard's staged records must hit the WAL before
                # the snapshot reflects them (the suffix-loss
                # invariant); other shards' backlogs are their own
                # problem — per-shard commit keeps the failure domains
                # separate
                self.commit_shards([shard_name])
                try:
                    self._snapshot_locked(shard_name)
                except OSError as exc:
                    raise self._shard_fault(shard_name, exc) from exc
                except BaseException:
                    self._latch_crash()
                    raise

    def _snapshot_locked(self, name: str) -> None:
        shard = self._inner._shard(name)
        rows = [list(t.values) for t in shard.relation()]
        self._fault("snapshot.begin")
        sessions = self._sessions.get(name)
        payload = _snapshot_payload(
            name,
            shard.scheme.attributes.names,
            rows,
            self._inner.schema_version,
            sessions=_sessions_to_snapshot(sessions) if sessions else None,
        )
        io = self._io_for(name)
        with self._io_lock:
            directory = self._shard_dir(name)
            tmp = directory / _SNAPSHOT_TMP
            io.snapshot_write(tmp, payload)
            self._fault("snapshot.tmp-written")
            # rename chain: the newest snapshot is installed over
            # generation 0 only after the older generations shift up,
            # so the last K snapshots stay on disk for repair to fall
            # back through.  A crash mid-rotation is safe: recovery
            # walks the chain newest-first and a shifted-but-not-yet-
            # replaced slot just means two adjacent generations briefly
            # hold the same content.
            for generation in range(self.snapshot_generations - 1, 0, -1):
                older = self.snapshot_path(name, generation - 1)
                if older.exists():
                    io.replace(older, self.snapshot_path(name, generation))
            io.replace(tmp, directory / SNAPSHOT_NAME)
            io.dir_fsync(directory)
            self._fault("snapshot.installed")
            wal = self._wals[name]
            with wal.io_lock:  # no commit may write between snapshot and cut
                wal.truncate()
                # replicas must see the same install+truncate, or their
                # chains diverge at the next shipped frame (base offset
                # restarts at zero); still under the WAL's I/O lock so
                # no frame can interleave between truncate and ship
                self._on_snapshot(name, payload)
            self.stats.snapshots_written += 1
            self._fault("snapshot.done")

    def maybe_snapshot(self, names: Optional[Iterable[str]] = None) -> None:
        """Snapshot every shard (or just ``names``) whose WAL has
        outgrown ``snapshot_interval`` records since its last
        snapshot.  Non-serving shards are skipped — their snapshot
        happens when a probe or ``repair`` heals them."""
        for name in (self._wals if names is None else set(names)):
            if self._shard_status[name] != SHARD_SERVING:
                continue
            if self._wals[name].records_since_snapshot >= self.snapshot_interval:
                self.snapshot(name)

    # -- mutations ---------------------------------------------------------------

    def _session_meta(
        self, session: Optional[PyTuple[str, int]]
    ) -> Optional[dict]:
        if session is None:
            return None
        sid, seq = session
        return {"sid": str(sid), "seq": int(seq)}

    def _session_hit(
        self, name: str, kind: str, session: PyTuple[str, int]
    ):
        """Exactly-once gate, under the shard lock.  Returns the
        original ``(outcome, ticket)`` for a duplicate of the
        session's recorded operation, ``None`` for a fresh sequence —
        and ``None`` for a same-seq retry whose original changed
        nothing (re-executing a no-op is the identity, and after a
        failover it may be the retry that actually applies the write).
        Raises :class:`~repro.exceptions.SessionSequenceError` when the
        sequence is behind the high-water mark."""
        sid, seq = str(session[0]), int(session[1])
        entry = self._sessions.get(name, {}).get(sid)
        if entry is None or seq > entry["seq"]:
            return None
        if seq < entry["seq"]:
            raise SessionSequenceError(sid, seq, entry["seq"])
        recorded_kind = entry.get("kind")
        if recorded_kind is not None and recorded_kind != kind:
            raise SessionSequenceError(sid, seq, entry["seq"])
        if entry.get("result") is not None:
            self.stats.session_dedup_hits += 1
            return entry["result"], entry.get("ticket")
        if recorded_kind is not None:
            # recovered from disk: the stamp proves the original applied
            # and is durable, but the live outcome object died with the
            # old process — reconstruct the only answer it can have had
            self.stats.session_dedup_hits += 1
            if kind == "+":
                shard = self._inner._shard(name)
                t = None
                result: object = InsertOutcome(
                    accepted=True,
                    scheme=name,
                    tuple=t,
                    method=self._inner.method,
                )
            else:
                result = True
            return result, entry.get("ticket")
        return None

    def _session_record(
        self,
        name: str,
        session: Optional[PyTuple[str, int]],
        kind: Optional[str],
        result: object,
        ticket: Optional[int],
    ) -> None:
        """Record a sessioned operation's outcome (shard lock held).
        ``kind`` is the staged frame's op for an effectful operation,
        ``None`` when nothing was logged (rejected insert, duplicate
        insert, absent delete) — those need no durable stamp because
        re-executing them cannot change state."""
        if session is None:
            return
        sid, seq = str(session[0]), int(session[1])
        table = self._sessions.setdefault(name, {})
        if sid not in table:
            self.stats.session_records += 1
        table[sid] = {
            "seq": seq, "kind": kind, "result": result, "ticket": ticket
        }

    def apply_insert(
        self, scheme_name: str, row, session: Optional[PyTuple[str, int]] = None
    ) -> PyTuple[InsertOutcome, Optional[int]]:
        """Validate, apply, and stage one insert; returns the outcome
        plus the commit ticket (``None`` for rejected or duplicate
        inserts, which stage nothing).  The durability building block
        the front end batches; direct callers want :meth:`insert`.

        ``session`` is an exactly-once stamp ``(session_id, seq)``: a
        duplicate of the session's recorded operation returns the
        original outcome without re-applying, the stamp rides in the
        WAL frame (and snapshot), so the guarantee survives restarts
        and failovers."""
        self._ensure_open()
        self._check_writable(scheme_name)
        shard = self._inner._shard(scheme_name)
        with self._locks[scheme_name]:
            if session is not None:
                hit = self._session_hit(scheme_name, "+", session)
                if hit is not None:
                    return hit
            # encode from the coerced tuple *before* applying, so a
            # non-serializable value rejects cleanly instead of
            # leaving an applied-but-unloggable operation behind
            t = shard.checker.coerce_tuple(scheme_name, row)
            record = _encode_record("+", t.values, self._session_meta(session))
            # pass the coerced tuple through: Tuple rows skip the inner
            # service's re-coercion, which matters on the hot path
            outcome = self._inner.insert(scheme_name, t)
            ticket = None
            effectful = outcome.accepted and not outcome.reason
            if effectful:
                ticket = self._stage(scheme_name, record)
            self._session_record(
                scheme_name, session, "+" if effectful else None,
                outcome, ticket,
            )
        return outcome, ticket

    def apply_delete(
        self, scheme_name: str, row, session: Optional[PyTuple[str, int]] = None
    ) -> PyTuple[bool, Optional[int]]:
        """Apply and stage one delete; ticket is ``None`` when the
        tuple was absent (nothing to log).  ``session`` as in
        :meth:`apply_insert`."""
        self._ensure_open()
        self._check_writable(scheme_name)
        shard = self._inner._shard(scheme_name)
        with self._locks[scheme_name]:
            if session is not None:
                hit = self._session_hit(scheme_name, "-", session)
                if hit is not None:
                    return hit
            t = shard.checker.coerce_tuple(scheme_name, row)
            record = _encode_record("-", t.values, self._session_meta(session))
            existed = self._inner.delete(scheme_name, t)
            ticket = self._stage(scheme_name, record) if existed else None
            self._session_record(
                scheme_name, session, "-" if existed else None,
                existed, ticket,
            )
        return existed, ticket

    def _finish(
        self, ticket: Optional[int], scheme_name: Optional[str] = None
    ) -> None:
        if ticket is None:
            return
        if self.auto_commit:
            if scheme_name is None:
                self.commit()
                self.maybe_snapshot()
            else:
                # single-shard op: commit only its own WAL, so another
                # shard's quarantined backlog (restaged, still dirty)
                # can never fail this shard's acknowledgment
                self.commit_shards([scheme_name])
                self.maybe_snapshot([scheme_name])
        else:
            self.wait_durable(ticket)

    def insert(
        self, scheme_name: str, row, session: Optional[PyTuple[str, int]] = None
    ) -> InsertOutcome:
        """Insert, durable before returning (see ``auto_commit``)."""
        outcome, ticket = self.apply_insert(scheme_name, row, session=session)
        self._finish(ticket, scheme_name)
        return outcome

    def delete(
        self, scheme_name: str, row, session: Optional[PyTuple[str, int]] = None
    ) -> bool:
        """Delete, durable before returning (see ``auto_commit``)."""
        existed, ticket = self.apply_delete(scheme_name, row, session=session)
        self._finish(ticket, scheme_name)
        return existed

    def apply_insert_many(
        self, ops: Iterable[PyTuple[str, object]]
    ) -> PyTuple[List[InsertOutcome], Optional[int]]:
        """Batch insert: one fixpoint drive per touched shard (the
        inner service's batching), every accepted row staged under one
        ticket — the amortization the front end's group-commit loop
        rides.  Returns the outcomes plus the covering ticket
        (``None`` when nothing fresh was accepted)."""
        self._ensure_open()
        ops = [(name, row) for name, row in ops]
        ticket: Optional[int] = None
        # gate every touched shard before anything applies: a batch
        # containing a quarantined shard fails whole and clean, so the
        # front end can retry it minus the sick shard's operations
        for name in sorted({name for name, _ in ops}):
            self._check_writable(name)
        with ExitStack() as stack:
            for name in sorted({name for name, _ in ops}):
                stack.enter_context(self._locks[name])
            coerced = [
                (name, self._inner._shard(name).checker.coerce_tuple(name, row))
                for name, row in ops
            ]
            records = [_encode_record("+", t.values) for _, t in coerced]
            outcomes = self._inner.insert_many(coerced)
            for (name, _), record, outcome in zip(coerced, records, outcomes):
                if outcome.accepted and not outcome.reason:
                    ticket = self._stage(name, record)
        return outcomes, ticket

    def insert_many(self, ops: Iterable[PyTuple[str, object]]) -> List[InsertOutcome]:
        """Batch insert, durable before returning (see ``auto_commit``)."""
        outcomes, ticket = self.apply_insert_many(ops)
        self._finish(ticket)
        return outcomes

    def load(self, state: DatabaseState) -> None:
        """Durable bulk load: apply atomically, then snapshot every
        shard — bulk ingests skip the WAL entirely (one snapshot is
        cheaper and the load is already atomic on disk once every
        shard's snapshot is installed)."""
        self._ensure_open()
        with ExitStack() as stack:
            for name in sorted(self._locks):
                stack.enter_context(self._locks[name])
            self._inner.load(state)
            for name in sorted(self._wals):
                self.commit()
                try:
                    self._snapshot_locked(name)
                except BaseException:
                    self._latch_crash()
                    raise

    # -- schema evolution --------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The current schema epoch (0 until the first evolution)."""
        return self._inner.schema_version

    def migration_status(self) -> Dict[str, object]:
        return self._inner.migration_status()

    def evolve(self, op: EvolutionOp, during=None) -> EvolutionResult:
        """Apply one schema evolution, durably, with zero downtime for
        unaffected shards (module docstring: *Schema evolution*).

        The inner service runs the online migration protocol; this
        layer contributes the commit point (``schema.log`` append +
        fsync, then the atomic manifest replace) through the
        ``pre_commit`` seam — it fires after the re-check, rebuild, and
        journal replay all succeeded, so nothing reaches disk for a
        rejected evolution — and the finalize step afterwards:
        epoch-stamped snapshots for every rebuilt shard, WAL/lock/
        status bookkeeping for added and dropped schemes, retired
        directories removed last.  A crash anywhere in between is
        recovered by :meth:`_recover`'s roll-forward.

        Raises :class:`~repro.exceptions.EvolutionRejectedError` (old
        epoch fully intact, still serving) on a refused evolution, and
        :class:`~repro.exceptions.ShardQuarantinedError` when any shard
        is not serving — migration needs every failure domain healthy.
        """
        self._ensure_open()
        for name in sorted(self._shard_status):
            if self._shard_status[name] != SHARD_SERVING:
                raise ShardQuarantinedError(
                    name,
                    self._shard_status[name],
                    self._shard_errors.get(name, ""),
                )
        # flush the staged backlog first: the migration captures shard
        # state, and everything acknowledged must be on disk before the
        # old epoch's WALs stop being authoritative
        self.commit()

        def pre_commit(new_schema, new_fds, _new_report) -> None:
            epoch = self._inner.schema_version + 1
            payload = {
                "epoch": epoch,
                "op": op.to_json(),
                "old_schema": _schema_to_json(self.schema),
                "schema": _schema_to_json(new_schema),
                "fds": _fds_to_json(new_fds),
            }
            record = _encode_record(
                "schema", [json.dumps(payload, separators=(",", ":"))]
            )
            self._fault("evolve.pre-wal")
            path = self.schema_log_path()
            with open(path, "ab", buffering=0) as handle:
                self.io.wal_write(handle, record, path)
                self.io.wal_fsync(handle, path)
            self.stats.evolutions_logged += 1
            self._fault("evolve.post-wal")
            # the commit point: after this replace, recovery rolls
            # forward to the new epoch; before it, the old epoch wins
            self._write_manifest(new_schema, new_fds, epoch)
            self.io.dir_fsync(self.root)
            self._fault("evolve.manifest")

        # the mid-migration window's writes must go through THIS layer:
        # handing the caller the inner service would acknowledge writes
        # that never reach a WAL — durable for the journal replay, lost
        # on the next restart
        durable_during = None
        if during is not None:
            caller_during = during

            def durable_during(_inner_service) -> None:
                caller_during(self)

        try:
            result = self._inner.evolve(
                op,
                during=durable_during,
                hook=self._fault,
                pre_commit=pre_commit,
            )
        except EvolutionRejectedError:
            raise  # clean refusal: nothing written, old epoch serving
        except BaseException:
            # an injected crash, an I/O failure in the commit point, or
            # anything unexpected mid-migration: the global catalog is
            # suspect, so the whole-service crash latch applies (reopen
            # recovers whichever epoch the manifest names)
            self._latch_crash()
            raise
        self.schema = self._inner.schema
        self.fds = self._inner.fds
        self.report = self._inner.report
        self._manifest_epoch = self._inner.schema_version
        try:
            self._finalize_evolution(result)
        except BaseException:
            self._latch_crash()
            raise
        return result

    def _finalize_evolution(self, result: EvolutionResult) -> None:
        """Post-commit disk reshaping, in crash-safe order: create new
        shard directories and WALs, snapshot every rebuilt shard at the
        new epoch (truncating its old-epoch WAL), and only then remove
        retired directories — so recovery always still has the sources
        it would need to re-derive an unsnapshotted migrated shard."""
        old_names = set(self._wals)
        new_names = set(self._inner.shard_names())
        for name in sorted(new_names - old_names):
            self._shard_dir(name).mkdir(parents=True, exist_ok=True)
            self._wals[name] = _ShardWal(self.wal_path(name), self._io_for(name))
            self._locks[name] = threading.RLock()
            self._shard_status[name] = SHARD_SERVING
        for name in result.rebuilt:
            with self._locks[name]:
                # flush any mid-migration staged records (old-epoch
                # values; the epoch-stamped snapshot below supersedes
                # them and truncates the WAL)
                self.commit_shards([name])
                self._snapshot_locked(name)
        for name in sorted(old_names - new_names):
            wal = self._wals.pop(name)
            with self._stage_lock:
                wal.take_pending()
                if name in self._dirty:
                    self._dirty.remove(name)
            wal.close()
            self._locks.pop(name, None)
            self._shard_status.pop(name, None)
            self._shard_errors.pop(name, None)
            shutil.rmtree(self._shard_dir(name), ignore_errors=True)
        self._fault("evolve.done")

    # -- self-healing ------------------------------------------------------------

    def repair(self, name: str) -> Dict[str, object]:
        """Heal one shard online: roll back to the newest good
        snapshot generation, replay the WAL's intact tail, bulk-load
        the result into a fresh shard (re-validated and re-chased
        lazily through the bulk kernel), write a clean snapshot, and
        return the shard to serving.  Every other shard keeps serving
        throughout — repair holds only this shard's lock.

        Returns a report dict (generation used, rows recovered, WAL
        records replayed, corruption counters).  Raises
        :class:`~repro.exceptions.ShardQuarantinedError` if the disk
        still refuses the clean snapshot (the shard stays quarantined)
        and :class:`ReproError` if no snapshot generation is readable
        but corrupt ones exist."""
        self._ensure_open()
        self._inner._shard(name)  # unknown-scheme error first
        with self._locks[name]:
            previous = self._shard_status[name]
            self._set_status(name, SHARD_REPAIRING,
                             self._shard_errors.get(name, ""))
            try:
                wal = self._wals[name]
                with wal.io_lock:
                    with self._stage_lock:
                        # in-memory backlog is unacknowledged by
                        # definition (an acked record is fsynced):
                        # dropping it is the legal suffix loss
                        _, dropped = wal.take_pending()
                        if name in self._dirty:
                            self._dirty.remove(name)
                    rows, generation, bad, _epoch, sessions = (
                        self._load_snapshot_rows(name)
                    )
                    if rows is None and bad:
                        raise ReproError(
                            f"shard {name!r}: no readable snapshot "
                            f"generation ({bad} corrupt); restore one from "
                            f"backup, then repair again"
                        )
                    if rows is None:
                        rows = {}
                    elif generation > 0:
                        self.stats.snapshot_fallbacks += 1
                        _log.warning(
                            "repair %s: rolled back to snapshot generation "
                            "%d (acknowledged records after it are lost)",
                            name, generation,
                        )
                    scan = self._read_wal(name, wal)
                    for op, values, meta in scan.ops:
                        if op == "+":
                            rows[values] = None
                        else:
                            rows.pop(values, None)
                        _replay_session_frame(sessions, op, meta)
                    if sessions:
                        self._sessions[name] = sessions
                    self.stats.wal_records_replayed += len(scan.ops)
                    wal.records_since_snapshot = len(scan.ops)
                    attr_names = self._inner._shard(name).scheme.attributes.names
                    # fresh shard build: re-validates the recovered rows
                    # against the scheme's embedded cover and leaves the
                    # tableau for the bulk kernel's lazy re-chase
                    self._inner.reload_shard(
                        name,
                        [dict(zip(attr_names, values)) for values in rows],
                    )
                # a clean snapshot collapses the repaired state into
                # generation 0 and truncates the WAL — the next open
                # recovers the healed state directly
                self._snapshot_locked(name)
            except OSError as exc:
                raise self._shard_fault(name, exc) from exc
            except BaseException:
                # validation failure (corrupt rows violating the cover)
                # or anything unexpected: stay quarantined, report why
                self._set_status(
                    name, SHARD_QUARANTINED,
                    self._shard_errors.get(name, "repair failed"),
                )
                raise
            self._set_status(name, SHARD_SERVING)
            self._void_shards.discard(name)
            _log.info(
                "shard %s repaired: generation=%s rows=%d replayed=%d "
                "dropped_staged=%d (was %s)",
                name, generation, len(rows), len(scan.ops), dropped, previous,
            )
            return {
                "shard": name,
                "previous_status": previous,
                "generation": generation,
                "rows": len(rows),
                "wal_records_replayed": len(scan.ops),
                "staged_records_dropped": dropped,
                "wal_corrupt_regions": scan.corrupt_regions,
                "wal_stranded_records": scan.stranded_records,
            }

    # -- reads and delegation ----------------------------------------------------

    def window(self, attrset, version: Optional[int] = None):
        self._ensure_open()
        return self._inner.window(attrset, version=version)

    def query(self, query, version: Optional[int] = None):
        """Relational query against the inner sharded service (its
        engine, its routing, its epoch- and version-stamped caches).
        ``version`` pins a retained schema epoch (in-memory only: a
        reopened store retains no retired epochs)."""
        self._ensure_open()
        return self._inner.query(query, version=version)

    def explain(self, query):
        self._ensure_open()
        return self._inner.explain(query)

    def representative(self):
        self._ensure_open()
        return self._inner.representative()

    def state(self) -> DatabaseState:
        return self._inner.state()

    def total_tuples(self) -> int:
        return self._inner.total_tuples()

    def shard_names(self) -> PyTuple[str, ...]:
        return self._inner.shard_names()

    def maintenance_cover(self, scheme_name: str):
        return self._inner.maintenance_cover(scheme_name)

    @property
    def method(self) -> str:
        return self._inner.method

    @property
    def live(self) -> bool:
        return self._inner.live

    @property
    def inner(self) -> ShardedWeakInstanceService:
        """The wrapped in-memory service (reads bypass the durability
        layer anyway; exposed for the front end and tests)."""
        return self._inner

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Commit anything staged and close the WAL files (idempotent;
        a crashed instance just closes its files, and a sick shard's
        backlog stays on its disk problem — best-effort flush)."""
        if not self._crashed:
            try:
                self.commit()
            except ShardQuarantinedError:
                pass  # healthy shards committed; the sick one cannot
        for wal in self._wals.values():
            wal.close()

    def __enter__(self) -> "DurableShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableShardedService<root={str(self.root)!r}, "
            f"tuples={self.total_tuples()}, "
            f"staged={sum(w.pending_records for w in self._wals.values())}, "
            f"crashed={self._crashed}>"
        )


# -- offline scrubbing ------------------------------------------------------------


def _wal_frame_crcs(data: bytes) -> List[int]:
    """The CRC sequence of a WAL image's intact prefix — the identity
    the replica cross-check compares (two chains agree exactly when
    one CRC sequence is a prefix of the other)."""
    crcs: List[int] = []
    offset = 0
    header = _FRAME.size
    total = len(data)
    while offset + header <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + header
        end = start + length
        if end > total or crc32(data[start:end]) != crc:
            break
        crcs.append(crc)
        offset = end
    return crcs


def verify_store(
    root: Union[str, os.PathLike],
    replicas: Sequence[Union[str, os.PathLike]] = (),
) -> Dict[str, object]:
    """Walk a durable directory offline — CRCs of every WAL frame,
    every snapshot generation's structure and CRC, stray tmp files —
    without opening a service (no schema needed, no locks taken, no
    bytes modified).  The ``repro verify-store`` command prints this.

    ``replicas`` are replica store roots (the ``--replica`` flags):
    each replica's chains are scrubbed the same way, and every
    replica WAL's frame-CRC sequence is cross-checked against the
    primary's.  A replica that holds a *prefix* of the primary's
    frames (or the reverse, after a primary snapshot-truncation the
    replica has not installed yet) is merely behind — reported, not a
    failure; **divergence** (neither sequence a prefix of the other)
    is a finding.

    Returns a report dict: ``ok`` is ``True`` iff nothing worse than a
    torn WAL tail (the expected residue of a crash) was found; each
    shard entry lists its findings.  Raises :class:`ReproError` when
    the directory is not a durable store at all."""
    root = pathlib.Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise ReproError(f"{root} is not a durable store (no {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        return {
            "root": str(root),
            "ok": False,
            "findings": [f"corrupt manifest: {exc}"],
            "shards": {},
        }
    findings: List[str] = []
    if manifest.get("format") != _FORMAT:
        findings.append(f"unsupported format {manifest.get('format')!r}")
    epoch = int(manifest.get("epoch", 0))
    schema_log: Dict[str, object] = {"records": 0}
    pending_rollforward: set = set()
    log_path = root / SCHEMA_LOG_NAME
    if log_path.exists():
        try:
            ops, good = _decode_records(log_path.read_bytes())
        except OSError as exc:
            findings.append(f"schema.log unreadable: {exc}")
        else:
            records = [o for o in ops if o[0] == "schema"]
            schema_log["records"] = len(records)
            tail = log_path.stat().st_size - good
            if tail:
                schema_log["torn_tail_bytes"] = tail
            if records:
                try:
                    last = json.loads(records[-1][1][0])
                    last_epoch = int(last.get("epoch", 0))
                except (TypeError, ValueError, IndexError):
                    findings.append("schema.log: unparsable last record")
                    last_epoch = None
                if last_epoch is not None and last_epoch < epoch:
                    findings.append(
                        f"schema.log ends at epoch {last_epoch} but the "
                        f"manifest names epoch {epoch}"
                    )
                if last_epoch is not None and last_epoch == epoch:
                    # a crash between the manifest replace and the
                    # finalize step leaves migrated-in schemes without
                    # directories yet; recovery rolls them forward, so
                    # a missing dir for exactly those schemes is
                    # expected crash residue, not damage
                    try:
                        new_names = {s[0] for s in last.get("schema", [])}
                        old_names = {
                            s[0] for s in last.get("old_schema", [])
                        }
                        pending_rollforward = new_names - old_names
                    except (TypeError, IndexError):
                        pending_rollforward = set()
    elif epoch > 0:
        findings.append(
            f"manifest names epoch {epoch} but there is no {SCHEMA_LOG_NAME}"
        )
    shards: Dict[str, Dict[str, object]] = {}
    ok = not findings
    for name in sorted(manifest.get("schemes", [])):
        directory = root / "shards" / name
        entry: Dict[str, object] = {
            "snapshots": [],
            "wal_records": 0,
            "findings": [],
        }
        shard_findings: List[str] = entry["findings"]
        if not directory.is_dir():
            if name in pending_rollforward:
                entry["pending_rollforward"] = True
            else:
                shard_findings.append("shard directory missing")
        else:
            if (directory / _SNAPSHOT_TMP).exists():
                entry["stray_tmp"] = True
            generation = 0
            while True:
                path = (
                    directory / SNAPSHOT_NAME
                    if generation == 0
                    else directory / f"{SNAPSHOT_NAME}.{generation}"
                )
                if not path.exists():
                    if generation == 0:
                        generation += 1
                        continue  # gen 0 may be mid-rotation; keep walking
                    break
                try:
                    snap = _parse_snapshot(path.read_bytes(), name)
                    entry["snapshots"].append(
                        {"generation": generation, "ok": True,
                         "tuples": len(snap["tuples"])}
                    )
                except (OSError, ReproError) as exc:
                    entry["snapshots"].append(
                        {"generation": generation, "ok": False, "error": str(exc)}
                    )
                    shard_findings.append(
                        f"snapshot generation {generation}: {exc}"
                    )
                generation += 1
            wal_path = directory / WAL_NAME
            if wal_path.exists():
                try:
                    scan = _scan_records(wal_path.read_bytes())
                except OSError as exc:
                    shard_findings.append(f"WAL unreadable: {exc}")
                else:
                    entry["wal_records"] = len(scan.ops)
                    if scan.corrupt:
                        entry["wal_corrupt_regions"] = scan.corrupt_regions
                        entry["wal_stranded_records"] = scan.stranded_records
                        shard_findings.append(
                            f"WAL mid-file corruption: {scan.corrupt_regions} "
                            f"bad region(s), {scan.stranded_records} intact "
                            f"record(s) stranded, {scan.tail_bytes} byte(s) "
                            f"beyond the trusted prefix"
                        )
                    elif scan.tail_bytes:
                        # expected crash residue: reported, not a failure
                        entry["wal_torn_tail_bytes"] = scan.tail_bytes
        if shard_findings:
            ok = False
        shards[name] = entry
    replica_reports: Dict[str, Dict[str, object]] = {}
    for replica_root in replicas:
        replica_root = pathlib.Path(replica_root)
        rep: Dict[str, object] = {"shards": {}, "findings": []}
        rep_findings: List[str] = rep["findings"]
        for name in sorted(manifest.get("schemes", [])):
            directory = replica_root / "shards" / name
            rentry: Dict[str, object] = {"wal_records": 0, "findings": []}
            rentry_findings: List[str] = rentry["findings"]
            if not directory.is_dir():
                # a replica that never received this shard is merely
                # all-behind, not damaged
                rentry["missing"] = True
                rep["shards"][name] = rentry
                continue
            snap_path = directory / SNAPSHOT_NAME
            if snap_path.exists():
                try:
                    _parse_snapshot(snap_path.read_bytes(), name)
                    rentry["snapshot_ok"] = True
                except (OSError, ReproError) as exc:
                    rentry["snapshot_ok"] = False
                    rentry_findings.append(f"snapshot: {exc}")
            wal_path = directory / WAL_NAME
            replica_crcs: List[int] = []
            if wal_path.exists():
                try:
                    data = wal_path.read_bytes()
                except OSError as exc:
                    rentry_findings.append(f"WAL unreadable: {exc}")
                    data = b""
                scan = _scan_records(data)
                rentry["wal_records"] = len(scan.ops)
                if scan.corrupt:
                    rentry_findings.append(
                        f"WAL mid-file corruption: {scan.corrupt_regions} "
                        f"bad region(s), {scan.stranded_records} record(s) "
                        f"stranded"
                    )
                replica_crcs = _wal_frame_crcs(data)
            primary_wal = root / "shards" / name / WAL_NAME
            primary_crcs: List[int] = []
            if primary_wal.exists():
                try:
                    primary_crcs = _wal_frame_crcs(primary_wal.read_bytes())
                except OSError:  # pragma: no cover - already reported above
                    primary_crcs = []
            shorter = min(len(replica_crcs), len(primary_crcs))
            if replica_crcs[:shorter] != primary_crcs[:shorter]:
                rentry_findings.append(
                    "WAL frame CRCs diverge from the primary's (neither "
                    "chain is a prefix of the other)"
                )
            elif len(replica_crcs) < len(primary_crcs):
                rentry["lag_frames"] = len(primary_crcs) - len(replica_crcs)
            elif len(replica_crcs) > len(primary_crcs):
                # primary truncated by a snapshot the replica has not
                # installed yet: stale, anti-entropy rejoin fixes it
                rentry["stale_frames"] = len(replica_crcs) - len(primary_crcs)
            rep["shards"][name] = rentry
            if rentry_findings:
                rep_findings.append(f"shard {name}: damaged or divergent")
                ok = False
        replica_reports[str(replica_root)] = rep
    report: Dict[str, object] = {
        "root": str(root),
        "ok": ok,
        "findings": findings,
        "epoch": epoch,
        "schema_log": schema_log,
        "shards": shards,
    }
    if replica_reports:
        report["replicas"] = replica_reports
    return report
