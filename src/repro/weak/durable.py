"""Per-shard write-ahead logging and snapshots for the sharded service.

Everything the services of :mod:`repro.weak.service` and
:mod:`repro.weak.sharded` serve lives in process memory: a restart
loses the state, which blocks the ROADMAP's long-lived-server goal.
:class:`DurableShardedService` wraps
:class:`~repro.weak.sharded.ShardedWeakInstanceService` with a
durability layer built on the same independence argument as the
sharding itself (Theorem 3): because every scheme's updates are
validated and applied against that scheme alone, each shard can own an
**independent write-ahead log** — there is no cross-shard transaction
whose atomicity a global log would have to protect.  Concretely:

* **WAL.**  Every accepted, non-duplicate insert or delete appends one
  CRC-framed record (``[u32 length][u32 crc32][JSON payload]``) to its
  scheme's append-only ``wal.log``.  Records are *staged* in memory
  and written by **group commit**: one :meth:`~DurableShardedService.
  commit` drains every shard's staged records, writes them, and issues
  one ``fsync`` per dirty WAL — so ``N`` concurrent writers share
  fsyncs instead of paying one each.  An operation is durable exactly
  when the commit covering its ticket has completed
  (:meth:`~DurableShardedService.wait_durable`).  Because the logs are
  per shard and the shards independent, there is also no *global*
  commit order to protect: :meth:`~DurableShardedService.
  commit_shards` commits any subset of shards in the calling thread,
  serialized per WAL by that WAL's own I/O lock — concurrent callers
  owning disjoint shards overlap their fsyncs (which release the
  GIL), which is where the multi-worker front end's throughput
  scaling comes from.
* **Snapshots.**  Periodically (every ``snapshot_interval`` WAL
  records per shard, or on demand) a shard's full relation is written
  to ``snapshot.json`` — tmp file, ``fsync``, atomic rename, directory
  ``fsync`` — and the WAL is truncated.  The snapshot is taken with
  the shard's pending records committed first (under the shard lock),
  so every operation a snapshot reflects is also on disk; records a
  crash loses are therefore always a *suffix* of the shard's history,
  which is what makes replay-over-snapshot idempotent (set-semantics
  inserts and deletes: the last surviving operation on a tuple decides
  its membership, replayed or not).
* **Recovery.**  Opening an existing directory reads each shard's
  snapshot, replays the WAL tail (stopping at a torn or corrupt frame
  and truncating it), and loads the reconstructed state into the
  sharded service in one atomic :meth:`~repro.weak.sharded.
  ShardedWeakInstanceService.load` — pure set arithmetic plus index
  builds, **no chase**: the shard tableaux and the global composer are
  rebuilt lazily through the column-major bulk kernel
  (:func:`repro.chase.bulk.ingest_state`) when first queried.  The
  recovered state is always, per shard, the state after some prefix of
  that shard's operation history — at least every acknowledged
  (fsynced) operation, at most every applied one.  Cross-shard, the
  prefixes are independent; Theorem 3 is exactly the license for that
  (any combination of per-shard satisfying states is satisfying).

**Fault injection.**  Every durability-critical boundary calls the
optional ``fault_hook`` with a crash-point name (:data:`CRASH_POINTS`)
before proceeding.  A hook that raises simulates the process dying at
that boundary: the instance latches ``crashed`` (further operations
raise :class:`DurableUnavailableError`) and the test harness re-opens
the directory with a fresh instance, exactly like a restart after
``kill -9``.  The ``commit.partial`` point additionally models a torn
machine-crash write: it fires after only a prefix of a WAL's staged
bytes has reached the file.

**Threading.**  Mutations and snapshots are safe under concurrent use:
each scheme has a reentrant shard lock (:meth:`shard_lock`) guarding
apply+stage order, staging and commit hand off through dedicated
internal locks, and :meth:`wait_durable` lets callers block for group
commit without holding any lock.  Reads (``window`` etc.) are *not*
internally locked — single-threaded callers need nothing, and the
multi-client front end (:mod:`repro.weak.server`) provides the read
locking discipline.  Values must be JSON-serializable scalars (the
DSL's strings and integers are); anything else is rejected before the
operation applies.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import threading
from contextlib import ExitStack
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
    Union,
)
from zlib import crc32

from repro.core.independence import IndependenceReport
from repro.core.maintenance import InsertOutcome
from repro.data.states import DatabaseState
from repro.deps.fd import FD
from repro.deps.fdset import FDSet
from repro.exceptions import ReproError
from repro.weak.service import WindowQueryAPI
from repro.weak.sharded import ShardedServiceStats, ShardedWeakInstanceService

#: Crash-point names, in the order a mutation's life passes them.  The
#: fault-injection harness (``tests/harness``) enumerates these; the
#: hook fires *before* the step the name describes completes, except
#: where the name says otherwise.
CRASH_POINTS = (
    "commit.begin",        # staged records chosen, nothing written yet
    "commit.partial",      # half of one WAL's staged bytes written (torn write)
    "commit.pre-fsync",    # all bytes written and flushed, no fsync yet
    "commit.post-fsync",   # every dirty WAL fsynced, tickets not yet released
    "snapshot.begin",      # shard state captured, nothing written yet
    "snapshot.tmp-written",  # tmp snapshot written + fsynced, not yet renamed
    "snapshot.installed",  # renamed over snapshot.json, WAL not yet truncated
    "snapshot.done",       # WAL truncated; snapshot cycle complete
)

#: ``fault_hook`` signature: called with a :data:`CRASH_POINTS` name;
#: raising simulates a crash at that boundary.
FaultHook = Callable[[str], None]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.json"
_SNAPSHOT_TMP = "snapshot.json.tmp"
_FORMAT = 1


class DurableUnavailableError(ReproError):
    """The durable service crashed (a fault hook fired or an I/O error
    escaped a commit/snapshot) and must be re-opened from disk."""


@dataclass
class DurableServiceStats(ShardedServiceStats):
    """Sharded-service counters extended with the durability layer's.

    ``as_dict`` enumerates dataclass fields, so these flow into the
    CLI ``stats`` op and benchmark assertions automatically — tests
    wait on counters, not on sleeps.
    """

    #: WAL records staged (accepted, non-duplicate mutations)
    wal_records_appended: int = 0
    #: group commits that wrote at least one record
    wal_commits: int = 0
    #: fsync() calls issued on WAL files (one per dirty WAL per commit)
    wal_fsyncs: int = 0
    #: bytes written to WAL files
    wal_bytes_written: int = 0
    #: WAL records re-applied while recovering (the journal replays)
    wal_records_replayed: int = 0
    #: per-shard snapshots written
    snapshots_written: int = 0
    #: shards whose recovery started from a snapshot file
    snapshot_loads: int = 0
    #: service opens that recovered existing on-disk state
    recoveries: int = 0


def _encode_record(op: str, values: Sequence[object]) -> bytes:
    """One framed WAL record.  Raises :class:`ReproError` (before any
    state mutates — callers encode first) on non-JSON values."""
    try:
        payload = json.dumps(
            [op, list(values)], separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ReproError(
            f"durable serving requires JSON-serializable tuple values: {exc}"
        ) from None
    return _FRAME.pack(len(payload), crc32(payload)) + payload


def _decode_records(data: bytes) -> PyTuple[List[PyTuple[str, PyTuple[object, ...]]], int]:
    """Parse framed records; returns ``(ops, good_offset)`` where
    ``good_offset`` is the byte length of the intact prefix.  A torn
    tail (short frame, short payload, or CRC mismatch) ends the parse
    — everything before it is trusted, everything after discarded."""
    ops: List[PyTuple[str, PyTuple[object, ...]]] = []
    offset = 0
    header = _FRAME.size
    total = len(data)
    while offset + header <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + header
        end = start + length
        if end > total:
            break  # torn write: payload never fully landed
        payload = data[start:end]
        if crc32(payload) != crc:
            break  # corrupt frame: stop at the last good record
        try:
            op, values = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):  # pragma: no cover - crc guards
            break
        ops.append((op, tuple(values)))
        offset = end
    return ops, offset


class _ShardWal:
    """One scheme's append-only WAL file plus its staged-record buffer.

    Staging and draining are coordinated by the owning service's
    locks; this class only knows about bytes and files.  The file
    handle is opened in append mode once and kept; truncation (after a
    snapshot) goes through :func:`os.truncate`, which co-operates with
    ``O_APPEND`` writes.
    """

    __slots__ = (
        "path",
        "_file",
        "pending",
        "pending_records",
        "records_since_snapshot",
        "io_lock",
    )

    def __init__(self, path: pathlib.Path):
        self.path = path
        self._file = None
        self.pending: List[bytes] = []
        self.pending_records = 0
        self.records_since_snapshot = 0
        # serializes drain+write+fsync (and truncate) on THIS file;
        # commits of different shards deliberately do not share a lock
        self.io_lock = threading.Lock()

    def _handle(self):
        if self._file is None:
            # unbuffered: one write() syscall per drained blob, and no
            # Python-side buffer sitting between a commit and its fsync
            self._file = open(self.path, "ab", buffering=0)
        return self._file

    def stage(self, record: bytes) -> None:
        self.pending.append(record)
        self.pending_records += 1
        self.records_since_snapshot += 1

    def take_pending(self) -> PyTuple[bytes, int]:
        """Drain the staged buffer (records join the next write in
        stage order — the per-shard WAL order is the apply order)."""
        if not self.pending:
            return b"", 0
        blob = b"".join(self.pending)
        count = self.pending_records
        self.pending = []
        self.pending_records = 0
        return blob, count

    def write(self, blob: bytes, fault: Optional[FaultHook]) -> None:
        """Append a drained blob, exercising the torn-write crash
        point halfway through when a hook is installed."""
        handle = self._handle()
        if fault is not None and len(blob) > 1:
            half = len(blob) // 2
            handle.write(blob[:half])
            handle.flush()
            fault("commit.partial")
            handle.write(blob[half:])
        else:
            handle.write(blob)
        handle.flush()

    def fsync(self) -> None:
        os.fsync(self._handle().fileno())

    def truncate(self) -> None:
        # _handle() also creates the file when no record was ever
        # appended (a snapshot of an unlogged shard must still leave
        # an empty WAL behind for the next open)
        handle = self._handle()
        handle.flush()
        os.truncate(self.path, 0)
        self.records_since_snapshot = 0

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class DurableShardedService(WindowQueryAPI):
    """A :class:`~repro.weak.sharded.ShardedWeakInstanceService` whose
    state survives restarts: per-shard WAL + snapshots (module
    docstring has the protocol).

    Construct over a directory: an empty or missing directory
    initializes fresh files; an existing one **recovers** — snapshot
    plus WAL-tail replay per shard, then one atomic load, no chase.
    ``auto_commit=True`` (the default, for single-threaded and script
    use) makes every mutation durable before it returns; the
    multi-client server passes ``auto_commit=False`` and drives
    :meth:`commit` itself from its group-commit thread.
    """

    DEFAULT_SNAPSHOT_INTERVAL = 4096

    def __init__(
        self,
        schema,
        fds: Union[FDSet, Iterable[FD], str],
        root: Union[str, os.PathLike],
        report: Optional[IndependenceReport] = None,
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
        auto_commit: bool = True,
        fault_hook: Optional[FaultHook] = None,
        **service_options,
    ):
        self.root = pathlib.Path(root)
        self.snapshot_interval = snapshot_interval
        self.auto_commit = auto_commit
        self.fault_hook = fault_hook
        self.stats = DurableServiceStats()
        self._inner = ShardedWeakInstanceService(
            schema, fds, report=report, stats=self.stats, **service_options
        )
        self.schema = self._inner.schema
        self.fds = self._inner.fds
        self.report = self._inner.report
        self._crashed = False
        # lock order (outer to inner): shard lock -> _io_lock -> _stage_lock;
        # _commit_cond shares _stage_lock's mutex domain via its own lock
        self._locks: Dict[str, threading.RLock] = {
            name: threading.RLock() for name in self._inner.shard_names()
        }
        self._io_lock = threading.RLock()
        self._stage_lock = threading.Lock()
        self._commit_cond = threading.Condition()
        self._staged_gen = 0
        self._committed_gen = -1
        self._wals: Dict[str, _ShardWal] = {}
        self._dirty: List[str] = []
        existing = (self.root / MANIFEST_NAME).exists()
        self._init_layout(existing)
        if existing:
            self._recover()

    # -- layout and recovery ----------------------------------------------------

    def _shard_dir(self, name: str) -> pathlib.Path:
        return self.root / "shards" / name

    def wal_path(self, name: str) -> pathlib.Path:
        return self._shard_dir(name) / WAL_NAME

    def snapshot_path(self, name: str) -> pathlib.Path:
        return self._shard_dir(name) / SNAPSHOT_NAME

    def _init_layout(self, existing: bool) -> None:
        names = sorted(self._inner.shard_names())
        if existing:
            manifest = json.loads((self.root / MANIFEST_NAME).read_text())
            if manifest.get("format") != _FORMAT:
                raise ReproError(
                    f"unsupported durable format {manifest.get('format')!r} "
                    f"in {self.root}"
                )
            if sorted(manifest.get("schemes", [])) != names:
                raise ReproError(
                    f"durable directory {self.root} was written for schemes "
                    f"{manifest.get('schemes')}, not {names}"
                )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            for name in names:
                self._shard_dir(name).mkdir(parents=True, exist_ok=True)
            tmp = self.root / (MANIFEST_NAME + ".tmp")
            tmp.write_text(
                json.dumps({"format": _FORMAT, "schemes": names}, indent=2)
            )
            os.replace(tmp, self.root / MANIFEST_NAME)
        for name in names:
            self._wals[name] = _ShardWal(self.wal_path(name))

    def _recover(self) -> None:
        """Snapshot + WAL-tail replay per shard, then one atomic load.

        Replay is pure set arithmetic on value tuples; the single
        :meth:`~repro.weak.sharded.ShardedWeakInstanceService.load`
        that follows builds the shard indexes, and every tableau is
        rebuilt lazily by the bulk kernel when first queried — the
        recovery path never chases.
        """
        relations: Dict[str, List[Dict[str, object]]] = {}
        replayed = 0
        snapshot_loads = 0
        for name, wal in self._wals.items():
            # WAL and snapshot values are in canonical attribute order
            # (Tuple.values), NOT declared column order — rebuild rows
            # as attribute-keyed mappings so the load cannot permute
            attr_names = self._inner._shard(name).scheme.attributes.names
            tmp = self._shard_dir(name) / _SNAPSHOT_TMP
            if tmp.exists():  # crash before the snapshot rename: discard
                tmp.unlink()
            rows: Dict[PyTuple[object, ...], None] = {}
            snap_path = self.snapshot_path(name)
            if snap_path.exists():
                snap = json.loads(snap_path.read_text())
                for values in snap["tuples"]:
                    rows[tuple(values)] = None
                snapshot_loads += 1
            if wal.path.exists():
                ops, good = _decode_records(wal.path.read_bytes())
                if good < wal.path.stat().st_size:
                    # torn or corrupt tail: drop it before appending
                    # anything after it would hide later records
                    os.truncate(wal.path, good)
                for op, values in ops:
                    if op == "+":
                        rows[values] = None
                    else:
                        rows.pop(values, None)
                replayed += len(ops)
                wal.records_since_snapshot = len(ops)
            relations[name] = [
                dict(zip(attr_names, values)) for values in rows
            ]
        self.stats.recoveries += 1
        self.stats.snapshot_loads += snapshot_loads
        self.stats.wal_records_replayed += replayed
        if any(relations.values()):
            self._inner.load(DatabaseState(self.schema, relations))

    # -- crash discipline --------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _ensure_open(self) -> None:
        if self._crashed:
            raise DurableUnavailableError(
                "durable service crashed; re-open the directory with a "
                "fresh DurableShardedService"
            )

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _latch_crash(self) -> None:
        self._crashed = True
        with self._commit_cond:
            self._commit_cond.notify_all()

    # -- staging and group commit ------------------------------------------------

    def shard_lock(self, name: str) -> threading.RLock:
        """The lock serializing writes (and snapshot reads) of one
        shard — the front end's per-shard write discipline."""
        return self._locks[name]

    def _stage(self, name: str, record: bytes) -> int:
        """Buffer one encoded record for the next group commit;
        returns the commit ticket that will cover it.  Caller holds
        the shard lock, so per-shard WAL order is apply order."""
        with self._stage_lock:
            wal = self._wals[name]
            if not wal.pending:
                self._dirty.append(name)
            wal.stage(record)
            self.stats.wal_records_appended += 1
            return self._staged_gen

    def _commit_wal(self, wal: _ShardWal) -> PyTuple[int, int]:
        """Drain, write, and fsync one WAL as a single critical
        section under its I/O lock; returns ``(bytes, records)``.

        The drain happens *inside* the lock, so the invariant every
        committer relies on holds: whoever acquires the lock and finds
        the buffer empty knows the previous holder already fsynced —
        an empty buffer under the lock means "durable", never
        "drained but still in flight"."""
        with wal.io_lock:
            with self._stage_lock:
                blob, count = wal.take_pending()
            if not blob:
                return 0, 0
            self._fault("commit.begin")
            wal.write(blob, self.fault_hook)
            self._fault("commit.pre-fsync")
            wal.fsync()
            self.stats.wal_fsyncs += 1
            self._fault("commit.post-fsync")
        return len(blob), count

    def commit(self) -> Optional[int]:
        """Global group commit: write and fsync every staged record,
        then release the covered tickets.  Returns the committed
        generation (``None`` when nothing was staged).  Serialized
        against other global commits and snapshots by the global I/O
        lock, and against per-shard :meth:`commit_shards` calls by
        each WAL's own I/O lock — a WAL drained by a concurrent
        per-shard commit is re-visited here only to synchronize on its
        lock (empty drain), which is exactly what makes the returned
        generation mean *durable* rather than merely *drained*.
        Staging continues concurrently and lands in the next
        generation.
        """
        self._ensure_open()
        try:
            with self._io_lock:
                with self._stage_lock:
                    dirty = [self._wals[name] for name in self._dirty]
                    self._dirty = []
                    gen = self._staged_gen
                    if dirty:
                        self._staged_gen += 1
                if not dirty:
                    return None
                written = 0
                records = 0
                for wal in dirty:
                    wrote, count = self._commit_wal(wal)
                    written += wrote
                    records += count
                if records:
                    self.stats.wal_commits += 1
                    self.stats.wal_bytes_written += written
        except BaseException:
            self._latch_crash()
            raise
        with self._commit_cond:
            self._committed_gen = gen
            self._commit_cond.notify_all()
        return gen

    def commit_shards(self, names: Iterable[str]) -> None:
        """Per-shard synchronous commit: drain, write, and fsync the
        named shards' staged records in the *calling* thread.  When it
        returns, every record staged on these shards before the call
        is durable (written by this call, or by whichever concurrent
        committer beat it to the WAL's I/O lock).

        This is the independence argument applied to the log itself:
        Theorem 3 says no cross-shard invariant constrains the
        interleaving, so shards need no global commit order and no
        shared committer — workers of the front end commit the shards
        they own concurrently, overlapping their fsyncs."""
        self._ensure_open()
        written = 0
        records = 0
        try:
            for name in sorted(set(names)):
                wrote, count = self._commit_wal(self._wals[name])
                written += wrote
                records += count
        except BaseException:
            self._latch_crash()
            raise
        if records:
            self.stats.wal_commits += 1
            self.stats.wal_bytes_written += written

    def wait_durable(self, ticket: int, timeout: Optional[float] = None) -> bool:
        """Block until the group commit covering ``ticket`` has fsynced
        (returns ``True``), the service crashes
        (:class:`DurableUnavailableError`), or the timeout elapses
        (returns ``False``).  Callers must not hold shard locks —
        waiting is what lets other writers fill the next batch."""
        with self._commit_cond:
            while self._committed_gen < ticket and not self._crashed:
                if not self._commit_cond.wait(timeout):
                    return False
        if self._committed_gen < ticket:
            raise DurableUnavailableError(
                "durable service crashed before the commit completed"
            )
        return True

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self, name: Optional[str] = None) -> None:
        """Write a snapshot of one shard (or all) and truncate its WAL.

        Takes the shard lock, commits the shard's still-staged records
        first (so the snapshot never reflects an operation the WAL
        lacks — the suffix-loss invariant recovery relies on), then
        writes tmp → fsync → rename → directory fsync → truncate.
        """
        self._ensure_open()
        names = [name] if name is not None else sorted(self._wals)
        for shard_name in names:
            with self._locks[shard_name]:
                self.commit()
                try:
                    self._snapshot_locked(shard_name)
                except BaseException:
                    self._latch_crash()
                    raise

    def _snapshot_locked(self, name: str) -> None:
        shard = self._inner._shard(name)
        rows = [list(t.values) for t in shard.relation()]
        self._fault("snapshot.begin")
        payload = json.dumps(
            {
                "format": _FORMAT,
                "scheme": name,
                "attributes": shard.scheme.attributes.names,
                "tuples": rows,
            },
            separators=(",", ":"),
        )
        with self._io_lock:
            directory = self._shard_dir(name)
            tmp = directory / _SNAPSHOT_TMP
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            self._fault("snapshot.tmp-written")
            os.replace(tmp, directory / SNAPSHOT_NAME)
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
            self._fault("snapshot.installed")
            wal = self._wals[name]
            with wal.io_lock:  # no commit may write between snapshot and cut
                wal.truncate()
            self.stats.snapshots_written += 1
            self._fault("snapshot.done")

    def maybe_snapshot(self, names: Optional[Iterable[str]] = None) -> None:
        """Snapshot every shard (or just ``names``) whose WAL has
        outgrown ``snapshot_interval`` records since its last
        snapshot."""
        for name in (self._wals if names is None else set(names)):
            if self._wals[name].records_since_snapshot >= self.snapshot_interval:
                self.snapshot(name)

    # -- mutations ---------------------------------------------------------------

    def apply_insert(
        self, scheme_name: str, row
    ) -> PyTuple[InsertOutcome, Optional[int]]:
        """Validate, apply, and stage one insert; returns the outcome
        plus the commit ticket (``None`` for rejected or duplicate
        inserts, which stage nothing).  The durability building block
        the front end batches; direct callers want :meth:`insert`."""
        self._ensure_open()
        shard = self._inner._shard(scheme_name)
        with self._locks[scheme_name]:
            # encode from the coerced tuple *before* applying, so a
            # non-serializable value rejects cleanly instead of
            # leaving an applied-but-unloggable operation behind
            t = shard.checker.coerce_tuple(scheme_name, row)
            record = _encode_record("+", t.values)
            # pass the coerced tuple through: Tuple rows skip the inner
            # service's re-coercion, which matters on the hot path
            outcome = self._inner.insert(scheme_name, t)
            ticket = None
            if outcome.accepted and not outcome.reason:
                ticket = self._stage(scheme_name, record)
        return outcome, ticket

    def apply_delete(
        self, scheme_name: str, row
    ) -> PyTuple[bool, Optional[int]]:
        """Apply and stage one delete; ticket is ``None`` when the
        tuple was absent (nothing to log)."""
        self._ensure_open()
        shard = self._inner._shard(scheme_name)
        with self._locks[scheme_name]:
            t = shard.checker.coerce_tuple(scheme_name, row)
            record = _encode_record("-", t.values)
            existed = self._inner.delete(scheme_name, t)
            ticket = self._stage(scheme_name, record) if existed else None
        return existed, ticket

    def _finish(self, ticket: Optional[int]) -> None:
        if ticket is None:
            return
        if self.auto_commit:
            self.commit()
            self.maybe_snapshot()
        else:
            self.wait_durable(ticket)

    def insert(self, scheme_name: str, row) -> InsertOutcome:
        """Insert, durable before returning (see ``auto_commit``)."""
        outcome, ticket = self.apply_insert(scheme_name, row)
        self._finish(ticket)
        return outcome

    def delete(self, scheme_name: str, row) -> bool:
        """Delete, durable before returning (see ``auto_commit``)."""
        existed, ticket = self.apply_delete(scheme_name, row)
        self._finish(ticket)
        return existed

    def apply_insert_many(
        self, ops: Iterable[PyTuple[str, object]]
    ) -> PyTuple[List[InsertOutcome], Optional[int]]:
        """Batch insert: one fixpoint drive per touched shard (the
        inner service's batching), every accepted row staged under one
        ticket — the amortization the front end's group-commit loop
        rides.  Returns the outcomes plus the covering ticket
        (``None`` when nothing fresh was accepted)."""
        self._ensure_open()
        ops = [(name, row) for name, row in ops]
        ticket: Optional[int] = None
        with ExitStack() as stack:
            for name in sorted({name for name, _ in ops}):
                stack.enter_context(self._locks[name])
            coerced = [
                (name, self._inner._shard(name).checker.coerce_tuple(name, row))
                for name, row in ops
            ]
            records = [_encode_record("+", t.values) for _, t in coerced]
            outcomes = self._inner.insert_many(coerced)
            for (name, _), record, outcome in zip(coerced, records, outcomes):
                if outcome.accepted and not outcome.reason:
                    ticket = self._stage(name, record)
        return outcomes, ticket

    def insert_many(self, ops: Iterable[PyTuple[str, object]]) -> List[InsertOutcome]:
        """Batch insert, durable before returning (see ``auto_commit``)."""
        outcomes, ticket = self.apply_insert_many(ops)
        self._finish(ticket)
        return outcomes

    def load(self, state: DatabaseState) -> None:
        """Durable bulk load: apply atomically, then snapshot every
        shard — bulk ingests skip the WAL entirely (one snapshot is
        cheaper and the load is already atomic on disk once every
        shard's snapshot is installed)."""
        self._ensure_open()
        with ExitStack() as stack:
            for name in sorted(self._locks):
                stack.enter_context(self._locks[name])
            self._inner.load(state)
            for name in sorted(self._wals):
                self.commit()
                try:
                    self._snapshot_locked(name)
                except BaseException:
                    self._latch_crash()
                    raise

    # -- reads and delegation ----------------------------------------------------

    def window(self, attrset):
        self._ensure_open()
        return self._inner.window(attrset)

    def query(self, query):
        """Relational query against the inner sharded service (its
        engine, its routing, its version-stamped result cache)."""
        self._ensure_open()
        return self._inner.query(query)

    def explain(self, query):
        self._ensure_open()
        return self._inner.explain(query)

    def representative(self):
        self._ensure_open()
        return self._inner.representative()

    def state(self) -> DatabaseState:
        return self._inner.state()

    def total_tuples(self) -> int:
        return self._inner.total_tuples()

    def shard_names(self) -> PyTuple[str, ...]:
        return self._inner.shard_names()

    def maintenance_cover(self, scheme_name: str):
        return self._inner.maintenance_cover(scheme_name)

    @property
    def method(self) -> str:
        return self._inner.method

    @property
    def live(self) -> bool:
        return self._inner.live

    @property
    def inner(self) -> ShardedWeakInstanceService:
        """The wrapped in-memory service (reads bypass the durability
        layer anyway; exposed for the front end and tests)."""
        return self._inner

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Commit anything staged and close the WAL files (idempotent;
        a crashed instance just closes its files)."""
        if not self._crashed:
            self.commit()
        for wal in self._wals.values():
            wal.close()

    def __enter__(self) -> "DurableShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableShardedService<root={str(self.root)!r}, "
            f"tuples={self.total_tuples()}, "
            f"staged={sum(w.pending_records for w in self._wals.values())}, "
            f"crashed={self._crashed}>"
        )
