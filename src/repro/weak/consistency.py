"""Join consistency and semijoin reduction ([Y], [BFM]).

A state is *join consistent* when it is exactly the set of projections
of one universal instance.  Tuples lost in the full join are
*dangling*.  For **acyclic** schemas, Yannakakis' semijoin full
reducer removes all dangling tuples in a linear number of semijoins
(two passes over a join tree), after which the state is globally
consistent — the machinery behind the paper's remark that the chase
"can be carried out essentially in polynomial time" on acyclic
schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.data.relations import RelationInstance
from repro.data.states import DatabaseState
from repro.exceptions import SchemaError
from repro.schema.database import DatabaseSchema
from repro.schema.hypergraph import JoinTree, join_tree


def semijoin(r: RelationInstance, s: RelationInstance) -> RelationInstance:
    """``r ⋉ s`` — tuples of ``r`` joinable with some tuple of ``s``."""
    common = r.attributes & s.attributes
    if not common:
        return r if s else RelationInstance(r.attributes)
    keys = {tuple(t.value(a) for a in common) for t in s}
    return r.select(lambda t: tuple(t.value(a) for a in common) in keys)


@dataclass(frozen=True)
class SemijoinStep:
    """One step of a full-reducer program: ``target ⋉= source``."""

    target: str
    source: str

    def __str__(self) -> str:
        return f"{self.target} ⋉= {self.source}"


def full_reducer_program(tree: JoinTree) -> PyTuple[SemijoinStep, ...]:
    """The classic two-pass semijoin program over a join tree:
    leaves-to-root, then root-to-leaves."""
    schema = tree.schema
    n = len(schema)
    adj: Dict[int, List[int]] = {i: [] for i in range(n)}
    for i, j in tree.edges:
        adj[i].append(j)
        adj[j].append(i)

    root = 0
    order: List[int] = []
    seen = {root}
    stack = [root]
    parent: Dict[int, Optional[int]] = {root: None}
    while stack:
        node = stack.pop()
        order.append(node)
        for nxt in adj[node]:
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = node
                stack.append(nxt)

    steps: List[SemijoinStep] = []
    # up: children reduce their parents, deepest first
    for node in reversed(order):
        p = parent[node]
        if p is not None:
            steps.append(SemijoinStep(schema[p].name, schema[node].name))
    # down: parents reduce their children, top first
    for node in order:
        p = parent[node]
        if p is not None:
            steps.append(SemijoinStep(schema[node].name, schema[p].name))
    return tuple(steps)


def full_reduce(state: DatabaseState) -> DatabaseState:
    """Remove all dangling tuples of an acyclic state with the semijoin
    full reducer.  Raises :class:`SchemaError` on cyclic schemas."""
    tree = join_tree(state.schema)
    if tree is None:
        raise SchemaError("full reduction requires an acyclic schema")
    relations = {s.name: state[s.name] for s in state.schema}
    for step in full_reducer_program(tree):
        relations[step.target] = semijoin(relations[step.target], relations[step.source])
    return DatabaseState(state.schema, relations)


def is_pairwise_consistent(state: DatabaseState) -> bool:
    """Every pair of relations agrees on its common attributes
    (``πRi∩Rj(ri) = πRi∩Rj(rj)``)."""
    relations = state.relations()
    for i, r in enumerate(relations):
        for s in relations[i + 1 :]:
            common = r.attributes & s.attributes
            if common and r.project(common) != s.project(common):
                return False
    return True


def is_globally_consistent(state: DatabaseState) -> bool:
    """Alias for join consistency (projections of one instance)."""
    return state.is_join_consistent()
