"""A multi-client front end over the sharded weak-instance services.

:class:`WeakInstanceServer` turns the single-threaded
:class:`~repro.weak.sharded.ShardedWeakInstanceService` (or its
durable wrapper, :class:`~repro.weak.durable.DurableShardedService`)
into a concurrent request processor, leaning on the same Theorem 3
independence the sharding does:

* **Per-shard write serialization by routing.**  Writes are enqueued
  onto one of ``workers`` queues chosen by the target scheme (stable
  hash of the shard name), so every operation on a scheme is applied
  by exactly one worker thread, in submission order — per-shard
  histories are serialized *by construction*, no lock convoy.  Cross-
  shard ordering is intentionally unspecified: Theorem 3 makes the
  shards independent, so there is no cross-scheme invariant an
  interleaving could break.
* **Group-commit batching, committed per shard.**  A worker drains its
  queue opportunistically (up to ``batch_limit`` requests), applies
  contiguous insert runs through :meth:`~repro.weak.durable.
  DurableShardedService.apply_insert_many` — one fixpoint drive per
  touched shard — and then commits the batch's shards itself via
  :meth:`~repro.weak.durable.DurableShardedService.commit_shards`:
  one WAL write + ``fsync`` per dirty shard, in the worker's own
  thread.  Because each worker owns its shards outright (the routing)
  and independent shards need no global commit order (Theorem 3),
  workers' fsyncs run concurrently — and ``fsync`` releases the GIL,
  so that overlap, not CPU parallelism, is where multi-worker
  throughput comes from under CPython.
* **Snapshot-consistent reads keyed by version stamps.**  Reads run in
  the *calling* thread (they never queue behind writes) under the
  planner's locking discipline: a scheme-local window takes only that
  shard's lock; a composer window takes the global read lock plus
  every shard lock in sorted order.  Each shard's monotone ``version``
  stamp is the read token — a window computed under the locks is a
  function of one version vector, never a torn mix
  (:meth:`shard_versions` exposes the stamps for the stress tests).
  A client that saw its insert acknowledged is guaranteed to see it in
  a later read: the write is applied before the future resolves.

The server works over a plain in-memory sharded service (writes are
applied under shard locks, no tickets) or a durable one (writes are
staged to the WAL and acknowledged only after their group commit
fsyncs).  If the durable layer crashes — for real or through a fault
hook — every in-flight and subsequent write fails with
:class:`~repro.weak.durable.DurableUnavailableError`; reads keep
serving the in-memory state, mirroring a read-only degraded mode.

Two further failure-domain behaviors ride on the same routing:

* **Backpressure.**  ``max_queue`` bounds each worker's queue; when a
  worker falls behind (slow disk, quarantined shard backlog) a submit
  that cannot enqueue within ``submit_timeout`` seconds is *shed* with
  :class:`~repro.exceptions.ServiceOverloadedError` — the request was
  never applied, so the client can safely retry — instead of growing
  an unbounded queue until memory does the shedding.  ``max_queue=0``
  (the default) keeps the old unbounded ``SimpleQueue`` behavior.
* **Quarantine isolation.**  A durable shard that was quarantined (or
  degraded read-only) fails only its *own* requests with
  :class:`~repro.exceptions.ShardQuarantinedError`: the batched insert
  path gates every touched shard before applying anything, so the
  worker strips the sick shard's ops from the run and retries the
  rest, and group commit acknowledges per shard — one sick shard
  never blocks another shard's writes, reads, or durability.
  :meth:`health` surfaces the per-shard status plus queue depths.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.maintenance import InsertOutcome
from repro.data.relations import RelationInstance, RowLike
from repro.exceptions import (
    ReproError,
    SchemaError,
    ServiceOverloadedError,
    ShardQuarantinedError,
)
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.weak.durable import DurableShardedService
from repro.weak.service import WindowQueryAPI
from repro.weak.sharded import ShardedWeakInstanceService


class ServerStoppedError(ReproError):
    """The request was submitted to a server that is not running."""


@dataclass
class _WriteRequest:
    kind: str  # "insert" | "delete"
    scheme: str
    row: RowLike
    #: exactly-once stamp ``(session_id, seq)`` or ``None``; stamped
    #: writes apply singly so the dedup check runs under the shard lock
    session: Optional[tuple] = None
    future: Future = field(default_factory=Future)
    result: object = None  # applied outcome, held until durable


_STOP = object()


class WeakInstanceServer(WindowQueryAPI):
    """Thread-pool request front end (module docstring has the design).

    Use as a context manager or call :meth:`start`/:meth:`stop`.
    Client-facing entry points are thread-safe: :meth:`insert` /
    :meth:`delete` (synchronous: durable-acknowledged before they
    return, when the service is durable), their ``submit_*`` variants
    (return a :class:`~concurrent.futures.Future`), and the
    :class:`~repro.weak.service.WindowQueryAPI` read surface.
    """

    #: max requests one worker drains into a single apply+commit batch
    DEFAULT_BATCH_LIMIT = 64

    def __init__(
        self,
        service: Union[DurableShardedService, ShardedWeakInstanceService],
        workers: int = 4,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        max_queue: int = 0,
        submit_timeout: Optional[float] = None,
    ):
        """``max_queue`` > 0 bounds each worker's queue at that many
        pending requests; a submit against a full queue waits up to
        ``submit_timeout`` seconds (``None``: fail immediately) and is
        then shed with :class:`ServiceOverloadedError`.  ``max_queue=0``
        keeps the queues unbounded and ``submit_timeout`` unused."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0 (0: unbounded)")
        self.service = service
        self.workers = workers
        self.batch_limit = batch_limit
        self.max_queue = max_queue
        self.submit_timeout = submit_timeout
        self.durable = isinstance(service, DurableShardedService)
        self._inner: ShardedWeakInstanceService = (
            service.inner if self.durable else service
        )
        names = sorted(self._inner.shard_names())
        #: scheme -> worker index; the stable routing that serializes
        #: each shard's writes through exactly one worker
        self._route = {name: i % workers for i, name in enumerate(names)}
        if self.durable:
            self._locks = {name: service.shard_lock(name) for name in names}
        else:
            self._locks = {name: threading.RLock() for name in names}
        self._plan_lock = threading.Lock()
        self._global_lock = threading.RLock()
        # unbounded: SimpleQueue (C-implemented, so the per-request
        # enqueue/drain cost stays small next to the fsync the batch
        # will pay); bounded: queue.Queue, whose maxsize is what makes
        # load shedding possible at all
        self._queues: List[Union[queue.SimpleQueue, queue.Queue]] = [
            queue.Queue(maxsize=max_queue) if max_queue else queue.SimpleQueue()
            for _ in range(workers)
        ]
        self._threads: List[threading.Thread] = []
        self._running = False
        # monotonically increasing counters; written by one thread or
        # guarded by the GIL — approximate under contention, like the
        # service's own op counters
        self.requests_accepted = 0
        self.requests_shed = 0
        self.write_batches = 0
        self.batched_writes = 0
        self.reads_served = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "WeakInstanceServer":
        if self._running:
            return self
        self._running = True
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(i,), name=f"weak-worker-{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Drain every queue and stop the workers.  Pending writes are
        completed (and made durable) first."""
        if not self._running:
            return
        self._running = False
        for q in self._queues:
            q.put(_STOP)
        for t in self._threads:
            t.join()
        self._threads = []
        if self.durable and not self.service.crashed:
            try:
                self.service.commit()  # belt and braces: nothing staged
            except ShardQuarantinedError:
                # a sick shard's backlog stays staged on its disk
                # problem; shutdown must not fail because of it
                pass

    def __enter__(self) -> "WeakInstanceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client write surface ----------------------------------------------------

    def _submit(
        self,
        kind: str,
        scheme_name: str,
        row: RowLike,
        session: Optional[tuple] = None,
    ) -> Future:
        if not self._running:
            raise ServerStoppedError("server is not running")
        worker = self._route.get(scheme_name)
        if worker is None:
            raise SchemaError(f"no relation named {scheme_name!r} in this schema")
        if session is not None:
            if not self.durable:
                raise ReproError(
                    "exactly-once sessions require a durable service (the "
                    "stamp lives in the WAL frame)"
                )
            sid, seq = session
            session = (str(sid), int(seq))
        request = _WriteRequest(kind, scheme_name, row, session)
        if self.max_queue:
            try:
                if self.submit_timeout is None:
                    self._queues[worker].put_nowait(request)
                else:
                    self._queues[worker].put(
                        request, timeout=self.submit_timeout
                    )
            except queue.Full:
                self.requests_shed += 1
                raise ServiceOverloadedError(
                    f"worker {worker} queue full "
                    f"({self.max_queue} pending writes); request for "
                    f"{scheme_name!r} shed, not applied — safe to retry"
                ) from None
        else:
            self._queues[worker].put(request)
        self.requests_accepted += 1
        return request.future

    def submit_insert(
        self,
        scheme_name: str,
        row: RowLike,
        session: Optional[tuple] = None,
    ) -> Future:
        """Enqueue an insert; the future resolves to its
        :class:`~repro.core.maintenance.InsertOutcome` once applied
        (and fsynced, on a durable service).  ``session`` is an
        exactly-once idempotency stamp ``(session_id, seq)``: a
        duplicate submission of the stamped write (a retry after a
        lost ack) resolves to the original outcome instead of
        re-applying — durable services only."""
        return self._submit("insert", scheme_name, row, session)

    def submit_delete(
        self,
        scheme_name: str,
        row: RowLike,
        session: Optional[tuple] = None,
    ) -> Future:
        """Enqueue a delete; the future resolves to whether the tuple
        existed.  ``session`` as in :meth:`submit_insert`."""
        return self._submit("delete", scheme_name, row, session)

    def insert(
        self,
        scheme_name: str,
        row: RowLike,
        session: Optional[tuple] = None,
    ) -> InsertOutcome:
        return self.submit_insert(scheme_name, row, session).result()

    def delete(
        self,
        scheme_name: str,
        row: RowLike,
        session: Optional[tuple] = None,
    ) -> bool:
        return self.submit_delete(scheme_name, row, session).result()

    # -- worker machinery --------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        q = self._queues[index]
        while True:
            first = q.get()
            if first is _STOP:
                return
            batch = [first]
            stop_after = False
            while len(batch) < self.batch_limit:
                try:
                    nxt = q.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    # _STOP is enqueued only after _running flipped
                    # False, so it is this queue's last item: finish
                    # the drained batch, then exit.  (Re-putting it
                    # could deadlock against a full bounded queue.)
                    stop_after = True
                    break
                batch.append(nxt)
            self._process_batch(batch)
            if stop_after:
                return

    def _apply_insert_run(
        self, run: List[_WriteRequest], resolved: List[_WriteRequest]
    ) -> bool:
        """Apply one contiguous insert run on a durable service,
        stripping quarantined shards' ops and retrying the rest —
        ``apply_insert_many`` gates every touched shard *before*
        applying anything, so a :class:`ShardQuarantinedError` means
        the run was not applied at all and the healthy remainder can
        go again.  Returns whether anything was staged."""
        svc = self.service
        remaining = run
        while remaining:
            try:
                outcomes, ticket = svc.apply_insert_many(
                    [(r.scheme, r.row) for r in remaining]
                )
            except ShardQuarantinedError as exc:
                rest = [r for r in remaining if r.scheme != exc.shard]
                if len(rest) == len(remaining):
                    raise  # not this run's shard: relay to every future
                for r in remaining:
                    if r.scheme == exc.shard:
                        r.future.set_exception(exc)
                remaining = rest
            else:
                for r, outcome in zip(remaining, outcomes):
                    r.result = outcome
                    resolved.append(r)
                return ticket is not None
        return False

    def _process_batch(self, batch: List[_WriteRequest]) -> None:
        """Apply a drained batch in order: contiguous insert runs go
        through the batched apply (one drive per shard), deletes apply
        singly.  On a durable service the worker then commits the
        batch's shards itself (one fsync per dirty shard, overlapping
        other workers' commits) — success futures resolve only after
        that commit, so an acknowledged write is a durable write.  The
        commit acknowledges *per shard*: a shard whose commit fails
        (quarantine) fails only its own futures, and the rest of the
        batch stays durably acknowledged."""
        svc = self.service
        staged = False
        resolved: List[_WriteRequest] = []  # applied, awaiting durability
        index = 0
        n = len(batch)
        self.write_batches += 1
        self.batched_writes += n
        while index < n:
            request = batch[index]
            if request.kind == "insert" and request.session is None:
                end = index
                while (
                    end < n
                    and batch[end].kind == "insert"
                    and batch[end].session is None
                ):
                    end += 1
                run = batch[index:end]
                try:
                    if self.durable:
                        staged = self._apply_insert_run(run, resolved) or staged
                    else:
                        with ExitStack() as stack:
                            for name in sorted({r.scheme for r in run}):
                                stack.enter_context(self._locks[name])
                            outcomes = svc.insert_many(
                                [(r.scheme, r.row) for r in run]
                            )
                        for r, outcome in zip(run, outcomes):
                            r.result = outcome
                            resolved.append(r)
                except BaseException as exc:  # noqa: BLE001 - relayed to clients
                    for r in run:
                        if not r.future.done():
                            r.future.set_exception(exc)
                index = end
            else:
                # deletes and session-stamped inserts apply singly:
                # the exactly-once dedup check must run under the
                # shard lock with the stamp attached to its own frame
                try:
                    if self.durable:
                        if request.kind == "insert":
                            outcome, ticket = svc.apply_insert(
                                request.scheme,
                                request.row,
                                session=request.session,
                            )
                        else:
                            outcome, ticket = svc.apply_delete(
                                request.scheme,
                                request.row,
                                session=request.session,
                            )
                        staged = staged or ticket is not None
                    else:
                        with self._locks[request.scheme]:
                            outcome = svc.delete(request.scheme, request.row)
                    request.result = outcome
                    resolved.append(request)
                except BaseException as exc:  # noqa: BLE001
                    request.future.set_exception(exc)
                index += 1
        if self.durable and staged:
            by_shard: Dict[str, List[_WriteRequest]] = {}
            for r in resolved:
                by_shard.setdefault(r.scheme, []).append(r)
            for name in sorted(by_shard):
                try:
                    svc.commit_shards([name])
                    svc.maybe_snapshot([name])
                except BaseException as exc:  # noqa: BLE001 - this shard's
                    # records are not durable: fail its futures only (a
                    # crash latch fails the remaining shards' commits
                    # the same way on their own iterations)
                    for r in by_shard[name]:
                        r.future.set_exception(exc)
                    continue
                for r in by_shard[name]:
                    r.future.set_result(r.result)
            return
        for r in resolved:
            r.future.set_result(r.result)

    # -- read surface ------------------------------------------------------------

    def window(self, attrset: AttrsLike) -> RelationInstance:
        """A window query under the planner's locking discipline (see
        module docstring); safe against concurrent writers."""
        target = AttributeSet(attrset)
        self.reads_served += 1
        with self._plan_lock:
            plan = self._inner._plan(target)
        if plan.local:
            with ExitStack() as stack:
                for name in sorted(plan.direct):
                    stack.enter_context(self._locks[name])
                return self._inner.window(target)
        with self._global_lock:
            with ExitStack() as stack:
                for name in sorted(self._locks):
                    stack.enter_context(self._locks[name])
                return self._inner.window(target)

    def query(self, query):
        """A relational query under the same locking discipline as
        :meth:`window`, generalized to every scan leaf in the tree: if
        the planner routes all leaves to shards, only the union of
        their direct shards is locked; one composer leaf escalates to
        the global read lock plus every shard lock.  Execution (and
        the engine's caches) belong to the wrapped service."""
        return self._locked_query(query, explain=False)

    def explain(self, query):
        """The inner service's :meth:`~repro.weak.service.
        WindowQueryAPI.explain`, run under the same locks as
        :meth:`query`."""
        return self._locked_query(query, explain=True)

    def _locked_query(self, query, explain: bool):
        from repro.query.parser import parse_query

        q = parse_query(query)
        self.reads_served += 1
        targets = {s.attrs for s in q.scans()}
        with self._plan_lock:
            plans = [self._inner._plan(t) for t in targets]
        run = self.service.explain if explain else self.service.query
        if plans and all(p.local for p in plans):
            with ExitStack() as stack:
                for name in sorted({n for p in plans for n in p.direct}):
                    stack.enter_context(self._locks[name])
                return run(q)
        with self._global_lock:
            with ExitStack() as stack:
                for name in sorted(self._locks):
                    stack.enter_context(self._locks[name])
                return run(q)

    def state(self):
        """A consistent cross-shard snapshot of the stored state."""
        with self._global_lock:
            with ExitStack() as stack:
                for name in sorted(self._locks):
                    stack.enter_context(self._locks[name])
                return self._inner.state()

    def snapshot(self) -> None:
        """Force a snapshot of every shard (durable services only);
        safe while the workers run — the snapshot path takes each
        shard's lock and commits its pending records first."""
        if not self.durable:
            raise ReproError("snapshot requires a durable service")
        self.service.snapshot()

    def health(self) -> Dict[str, object]:
        """The wrapped service's health report (overall status,
        per-shard status, last error per sick shard) plus the server's
        own load picture: queue depths, the bound, and how many
        requests have been shed."""
        report = dict(self.service.health())
        report.update(
            running=self._running,
            workers=self.workers,
            max_queue=self.max_queue,
            queue_depths=[q.qsize() for q in self._queues],
            requests_shed=self.requests_shed,
        )
        return report

    # -- schema evolution --------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The wrapped service's current schema epoch."""
        return self.service.schema_version

    def migration_status(self) -> Dict[str, object]:
        """The wrapped service's migration state (epoch, retained
        pinned epochs, whether a migration is in flight)."""
        return self.service.migration_status()

    def evolve(self, op, during=None):
        """Apply a schema-evolution op to the live server.

        The wrapped service does the heavy lifting (incremental
        re-check, scoped rebuild, mid-migration journal); the server's
        job is the *swap window*: after the optional ``during``
        callback runs (mid-migration writes — they land in the
        journal), the calling thread takes the global read lock plus
        every shard lock, so no worker batch or reader is mid-flight
        while the journal replays and the catalog swaps (and, on a
        durable service, while the new epoch's snapshots are
        finalized — the shard locks are reentrant, so the finalize's
        own per-shard locking nests cleanly).  Once the service call
        returns, the routing table and lock map are rebuilt for the
        new shard set and the locks release — unaffected shards were
        only ever blocked for the replay-and-swap instant, not the
        rebuild.

        Raises :class:`~repro.exceptions.EvolutionRejectedError` (old
        epoch untouched, still serving) exactly like the service."""
        with ExitStack() as stack:

            def quiesce(service) -> None:
                if during is not None:
                    during(service)
                stack.enter_context(self._global_lock)
                for name in sorted(self._locks):
                    stack.enter_context(self._locks[name])

            result = self.service.evolve(op, during=quiesce)
            names = sorted(self._inner.shard_names())
            self._route = {name: i % self.workers for i, name in enumerate(names)}
            if self.durable:
                self._locks = {
                    name: self.service.shard_lock(name) for name in names
                }
            else:
                self._locks = {
                    name: self._locks.get(name) or threading.RLock()
                    for name in names
                }
        return result

    def repair(self, scheme_name: str) -> Dict[str, object]:
        """Repair one shard online (durable services only): delegates
        to :meth:`~repro.weak.durable.DurableShardedService.repair`,
        which takes the shard's own locks — the workers keep serving
        every other shard while it runs."""
        if not self.durable:
            raise ReproError("repair requires a durable service")
        return self.service.repair(scheme_name)

    def shard_versions(self) -> Dict[str, int]:
        """The monotone per-shard version stamps — the read tokens the
        stress tests use to assert no torn reads."""
        return {
            name: self._inner._shard(name).version for name in self._locks
        }

    def stats_dict(self) -> Dict[str, object]:
        """Service counters plus the server's own request counters."""
        stats = dict(self.service.stats.as_dict())
        stats.update(
            server_requests_accepted=self.requests_accepted,
            server_requests_shed=self.requests_shed,
            server_write_batches=self.write_batches,
            server_batched_writes=self.batched_writes,
            server_reads_served=self.reads_served,
            server_workers=self.workers,
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"WeakInstanceServer<workers={self.workers}, "
            f"durable={self.durable}, running={self._running}>"
        )
