"""Independence-aware sharded weak-instance maintenance.

The paper's central payoff (Theorems 2–3) is that an *independent*
schema makes constraint enforcement **local**: every relation's
implied constraints ``Σi`` are covered by its own embedded FDs ``Hi``,
so a single-relation update is checkable against that relation alone.
:class:`ShardedWeakInstanceService` turns the theorem into the serving
architecture:

* **One shard per relation scheme.**  Each :class:`_SchemeShard` owns
  an ``_FDIndex``-backed local checker (a
  :class:`~repro.core.maintenance.MaintenanceChecker` over the
  single-scheme restriction, O(1) per insert per cover FD) and its own
  per-scheme :class:`~repro.weak.service.LiveTableau` chased only
  under the scheme's maintenance cover ``Hi``.  An insert or delete
  touches exactly one shard: no global chase, no global merge log, and
  no cache invalidation outside the shard.
* **A window planner.**  A query over attributes ``X`` is answered
  from the shards alone when that is provably equivalent to the global
  chase: every scheme that *could* contribute an ``X``-total row — a
  row of ``rj`` only ever becomes total on attributes inside
  ``cl_F(Rj)`` — must contain ``X`` outright, in which case its rows'
  ``X``-projections are fixed constants and the global window is
  exactly the deduplicated union of the direct shards' projections.
  (The guard is necessary: in ``AB(A,B); CA(C,A); CB(C,B)`` with
  ``C→A, C→B`` — an independent schema — the window over ``AB``
  contains facts joined *through* ``C``, so ``X ⊆ Ri`` alone does not
  license a local answer.)
* **A lazily-synced global composer.**  Everything else goes through a
  global :class:`~repro.weak.service.LiveTableau` over the full
  schema, built lazily and kept current by replaying the shards'
  operation journals (appends chase incrementally, deletes retract
  provenance-scoped) — one batched fixpoint per sync instead of one
  per insert.  Because every shard validated its own updates,
  Theorem 3 guarantees the composed state is satisfying: the composer
  never validates, it only derives.  When a journal overflows (or the
  composer was never built), the resync is a from-scratch rebuild of
  the union state — which runs on the column-major bulk chase kernel
  (:mod:`repro.chase.bulk`, ``bulk_loads=True`` by default), so even
  the worst-case resync pays the set-at-a-time price.

Non-independent schemas are rejected at construction with the
analysis report (Lemma 3 / Theorem 4 counterexample) attached — use
:class:`~repro.weak.service.WeakInstanceService` with
``method="chase"`` for those.

Observationally the service is identical to
``WeakInstanceService(method="chase")`` and to rebuilding from scratch
per query (the randomized oracle suite in
``tests/test_weak_sharded.py`` pins all three against each other); the
difference is the cost model: updates are O(local) and scheme-local
windows never pay for other shards' traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
    Union,
)

from repro.chase.tableau import ChaseTableau
from repro.core.independence import IndependenceReport, analyze, reanalyze
from repro.core.maintenance import InsertOutcome, MaintenanceChecker
from repro.data.relations import RelationInstance, RowLike
from repro.data.states import DatabaseState
from repro.data.tuples import Tuple
from repro.deps.fd import FD
from repro.deps.fdset import FDSet, as_fdset
from repro.exceptions import (
    EvolutionRejectedError,
    InconsistentStateError,
    NotIndependentError,
    SchemaError,
    ShardQuarantinedError,
)
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.schema.database import DatabaseSchema
from repro.schema.evolution import EvolutionOp
from repro.schema.relation import RelationScheme
from repro.weak.service import LiveTableau, ServiceStats, WindowQueryAPI


@dataclass
class ShardedServiceStats(ServiceStats):
    """Counters of :class:`ShardedWeakInstanceService`, extending the
    base service's (``as_dict`` enumerates dataclass fields, so these
    flow into the CLI ``stats`` op automatically).  The inherited
    tableau-lifecycle counters aggregate over every live tableau the
    service holds — all shards plus the composer."""

    #: windows answered from shard projections alone (planner fast path)
    shard_windows: int = 0
    #: windows composed through the global tableau
    global_windows: int = 0
    #: composer catch-ups that replayed at least one journaled op
    composer_syncs: int = 0
    #: journaled ops replayed into the composer across all syncs
    composer_synced_ops: int = 0
    #: journals that outgrew their bound (the next sync rebuilds the
    #: composer from state instead of replaying)
    journal_overflows: int = 0
    #: query leaf scans answered from direct shards (planner fast path)
    query_shard_scans: int = 0
    #: query leaf scans that had to sync and read the global composer
    query_composer_scans: int = 0
    #: schema evolutions applied (each bumps the schema epoch)
    evolutions_applied: int = 0
    #: schema evolutions refused (independence broken or data refuted)
    evolutions_rejected: int = 0
    #: Loop verdicts re-derived by incremental re-checks
    independence_recheck_schemes: int = 0
    #: Loop verdicts reused unchanged by incremental re-checks
    independence_reused_schemes: int = 0
    #: shards rebuilt by migrations (structural or cover change)
    migration_shards_rebuilt: int = 0
    #: shards a migration left serving untouched
    migration_shards_kept: int = 0
    #: mid-migration ops replayed from migration journals onto fresh shards
    migration_journal_replays: int = 0


@dataclass(frozen=True)
class WindowPlan:
    """The planner's (memoized) decision for one attribute target."""

    #: answerable from the direct shards alone
    local: bool
    #: schemes whose attribute sets contain the target
    direct: PyTuple[str, ...]


@dataclass(frozen=True)
class EvolutionResult:
    """What one applied evolution did, layer by layer."""

    op: str
    epoch_from: int
    epoch_to: int
    #: schemes whose Loop verdict the incremental re-check re-derived
    rechecked: PyTuple[str, ...]
    #: schemes whose verdict was reused unchanged
    reused: PyTuple[str, ...]
    #: shards rebuilt (new-epoch names)
    rebuilt: PyTuple[str, ...]
    #: shards that kept serving untouched (new-epoch names)
    kept: PyTuple[str, ...]
    #: mid-migration ops replayed from migration journals
    journal_replays: int

    def summary(self) -> str:
        return (
            f"epoch {self.epoch_from} -> {self.epoch_to}: {self.op}; "
            f"rechecked {len(self.rechecked)} scheme(s) "
            f"({', '.join(self.rechecked) or 'none'}), reused "
            f"{len(self.reused)}; rebuilt {len(self.rebuilt)} shard(s) "
            f"({', '.join(self.rebuilt) or 'none'}), kept {len(self.kept)}; "
            f"replayed {self.journal_replays} mid-migration op(s)"
        )


@dataclass(frozen=True)
class _EpochView:
    """A retired schema epoch, kept for version-pinned reads.

    ``frozen`` holds the final rows of every old scheme whose live
    shard no longer matches it (dropped, renamed, re-attributed);
    schemes untouched by the migration are read from the live shards
    at query time, so post-evolution writes to them stay visible
    through the old version — the co-existing-versions contract."""

    schema: DatabaseSchema
    fds: FDSet
    frozen: Dict[str, List[Tuple]]


class _SchemeShard:
    """One relation scheme's maintenance unit.

    Wraps the single-scheme restriction of the independence report: a
    local ``MaintenanceChecker`` (``_FDIndex`` per cover FD) plus a
    per-scheme :class:`LiveTableau` chased under ``Hi``.  Mutations
    bump :attr:`version` and append to the journal the global composer
    replays; beyond :data:`JOURNAL_LIMIT` pending entries the journal
    collapses into a "composer must rebuild" flag, so an endless
    update stream that never asks a global question holds O(1) memory
    here.
    """

    #: journal entries kept before collapsing into a full-resync flag
    JOURNAL_LIMIT = 32768

    __slots__ = (
        "scheme",
        "name",
        "cover",
        "checker",
        "live",
        "stats",
        "version",
        "_journal",
        "_needs_resync",
    )

    def __init__(
        self,
        scheme: RelationScheme,
        restriction: IndependenceReport,
        stats: ShardedServiceStats,
        scoped_deletes: bool,
        delete_rebuild_fraction: float,
        window_cache_limit: int,
        bulk_loads: bool,
    ):
        self.scheme = scheme
        self.name = scheme.name
        self.cover: FDSet = restriction.fds
        self.checker = MaintenanceChecker(
            restriction.schema, self.cover, method="local", report=restriction
        )
        self.stats = stats
        self.live = LiveTableau(
            restriction.schema,
            self.cover,
            lambda: self.checker.state(),
            stats,
            scoped_deletes=scoped_deletes,
            delete_rebuild_fraction=delete_rebuild_fraction,
            window_cache_limit=window_cache_limit,
            bulk_loads=bulk_loads,
        )
        self.version = 0
        self._journal: List[PyTuple[str, Tuple]] = []
        # starts True: the composer starts stale, so journaling before
        # its first build would only retain tuples a drain discards —
        # _sync_composer re-arms journaling once the composer is live
        self._needs_resync = True

    # -- journal ---------------------------------------------------------------

    def _journal_op(self, op: str, t: Tuple) -> None:
        if self._needs_resync:
            # the composer will rebuild from state anyway (stale,
            # freshly loaded, or overflowed): journaling would retain
            # tuples only for a drain to discard
            return
        self._journal.append((op, t))
        if len(self._journal) > self.JOURNAL_LIMIT:
            self._needs_resync = True
            self._journal.clear()
            self.stats.journal_overflows += 1

    def drain_journal(self) -> Optional[List[PyTuple[str, Tuple]]]:
        """Ops since the last drain, or ``None`` when replay is no
        longer possible (overflow or load) and the composer must
        rebuild from state."""
        if self._needs_resync:
            self._needs_resync = False
            self._journal.clear()
            return None
        ops, self._journal = self._journal, []
        return ops

    # -- mutations -------------------------------------------------------------

    def insert(self, row: RowLike, drive: bool = True) -> InsertOutcome:
        """Validate against the shard's ``Hi`` indexes and commit —
        the Theorem 3 O(1) maintenance check.  ``drive=False`` defers
        the shard fixpoint so a batch caller can run it once for many
        appended rows (:meth:`drive_pending`)."""
        outcome = self.checker.insert(self.name, row)
        if not outcome.accepted:
            self.stats.inserts_rejected += 1
            return outcome
        self.stats.inserts_accepted += 1
        if outcome.reason:  # duplicate: nothing changed
            self.stats.duplicate_inserts += 1
            return outcome
        self.version += 1
        self._journal_op("+", outcome.tuple)
        if self.live.live:
            self.live.append(self.name, outcome.tuple)
            if drive:
                self.live.drive()
        return outcome

    def drive_pending(self) -> None:
        """Run the shard fixpoint over rows appended with
        ``drive=False`` (no-op while the shard tableau is stale)."""
        if self.live.live:
            self.live.drive()

    def delete(self, row: RowLike) -> bool:
        t = self.checker.coerce_tuple(self.name, row)
        if not self.checker.delete(self.name, t):
            return False
        self.stats.deletes += 1
        self.version += 1
        self._journal_op("-", t)
        self.live.retract(self.name, t)
        return True

    def load_fresh(self, fresh: Sequence[Tuple]) -> None:
        """Atomically load pre-deduplicated, not-yet-present tuples
        (the shard checker validates them against its indexes)."""
        if not fresh:
            return
        self.checker.load(
            DatabaseState(self.checker.schema, {self.name: list(fresh)})
        )
        self.version += 1
        self.live.invalidate()
        # bulk loads skip the journal: the composer rebuilds instead
        self._needs_resync = True
        self._journal.clear()

    def rollback_fresh(self, fresh: Sequence[Tuple]) -> None:
        """Undo a committed :meth:`load_fresh` (multi-shard load
        atomicity: a later shard's rejection unwinds earlier shards).
        Deletions are always safe, so this cannot fail."""
        for t in fresh:
            self.checker.delete(self.name, t)
        self.version += 1
        self.live.invalidate()

    # -- reads -----------------------------------------------------------------

    def window(
        self, target: AttributeSet, count_hits: bool = True
    ) -> RelationInstance:
        return self.live.window(target, count_hits=count_hits)

    def relation(self) -> RelationInstance:
        return self.checker.state()[self.name]

    def total_tuples(self) -> int:
        return self.checker.total_tuples()


class ShardedWeakInstanceService(WindowQueryAPI):
    """A weak-instance query service sharded by relation scheme.

    Shares the :class:`~repro.weak.service.WeakInstanceService`
    interface (``load`` / ``insert`` / ``delete`` / ``window`` /
    ``derivable`` / batch variants / ``state`` / ``stats``) and its
    answers, but confines every update to the inserted or deleted
    tuple's own shard (see the module docstring).  Requires an
    independent schema; pass a precomputed ``report`` to skip
    re-analysis (the CLI analyzes once for its up-front diagnostic and
    hands the report down).
    """

    DEFAULT_WINDOW_CACHE_LIMIT = LiveTableau.DEFAULT_WINDOW_CACHE_LIMIT
    DEFAULT_DELETE_REBUILD_FRACTION = LiveTableau.DEFAULT_DELETE_REBUILD_FRACTION

    def __init__(
        self,
        schema: DatabaseSchema,
        fds: Union[FDSet, Iterable[FD], str],
        report: Optional[IndependenceReport] = None,
        scoped_deletes: bool = True,
        delete_rebuild_fraction: float = DEFAULT_DELETE_REBUILD_FRACTION,
        window_cache_limit: int = DEFAULT_WINDOW_CACHE_LIMIT,
        bulk_loads: bool = True,
        stats: Optional[ShardedServiceStats] = None,
    ):
        self.schema = schema
        self.fds = as_fdset(fds)
        if report is None:
            # build_counterexample stays on: on rejection the raised
            # error carries the Lemma 3 / Theorem 4 witness state, and
            # on acceptance no witness is constructed anyway
            report = analyze(schema, self.fds)
        if not report.independent:
            err = NotIndependentError(
                "sharded maintenance requires an independent schema "
                "(Theorem 3 locality does not hold); analysis:\n"
                + report.summary()
            )
            err.report = report
            raise err
        self.report = report
        # a caller-supplied stats object lets wrappers substitute an
        # extended dataclass (the durable layer's WAL counters live in
        # a ShardedServiceStats subclass) while every shard and the
        # composer still share the one instance
        self.stats = ShardedServiceStats() if stats is None else stats
        self._window_cache_limit = window_cache_limit
        self._shards: Dict[str, _SchemeShard] = {}
        for scheme in schema:
            self._shards[scheme.name] = _SchemeShard(
                scheme,
                report.scheme_restriction(scheme.name),
                self.stats,
                scoped_deletes,
                delete_rebuild_fraction,
                window_cache_limit,
                bulk_loads,
            )
        self._composer = LiveTableau(
            schema,
            self.fds,
            self.state,
            self.stats,
            scoped_deletes=scoped_deletes,
            delete_rebuild_fraction=delete_rebuild_fraction,
            window_cache_limit=window_cache_limit,
            bulk_loads=bulk_loads,
        )
        #: cl_F(Ri) per scheme — the planner's reachability bound
        self._closures: Dict[str, AttributeSet] = {
            s.name: self.fds.closure(s.attributes) for s in schema
        }
        self._plans: Dict[AttributeSet, WindowPlan] = {}
        # merged multi-shard windows, keyed by target with the shard
        # version vector they were computed at
        self._merged_cache: Dict[
            AttributeSet, PyTuple[PyTuple[int, ...], RelationInstance]
        ] = {}
        # shards a durable wrapper has taken out of service (name →
        # status string): reads that would consult one raise instead of
        # serving possibly-stale rows.  Plans stay cached — they are
        # pure functions of the schema; availability is checked per read.
        self._unavailable: Dict[str, str] = {}
        # which physical store serves each shard (label, default
        # "primary"): pure bookkeeping for the replication layer's
        # failover — routing itself never inspects it, because Theorem 3
        # shards are location-transparent
        self._primaries: Dict[str, str] = {}
        #: the schema epoch — bumped by every applied evolution; query
        #: caches key on it so old-epoch results never serve the new one
        self.schema_version = 0
        #: retired epochs kept for version-pinned reads (bounded FIFO)
        self._epochs: Dict[int, _EpochView] = {}
        self.epoch_retention = 2
        # mid-migration write tap: scheme name → ops accepted on the
        # old shard while its replacement is being built (None: no
        # migration in flight)
        self._migration_tap: Optional[Dict[str, List[PyTuple[str, Tuple]]]] = None
        #: migration state for health(): shard name → phase string
        self._migrating: Dict[str, str] = {}

    @classmethod
    def from_state(
        cls,
        state: DatabaseState,
        fds: Union[FDSet, Iterable[FD], str],
        report: Optional[IndependenceReport] = None,
        **options,
    ) -> "ShardedWeakInstanceService":
        service = cls(state.schema, fds, report=report, **options)
        service.load(state)
        return service

    @property
    def method(self) -> str:
        """Insert validation is always the Theorem 3 local check."""
        return "local"

    # like the base service, the tuning knobs stay writable on a live
    # service; writes forward to every seam that consults them (each
    # shard's LiveTableau plus the composer), so assignment is never a
    # silent no-op for callers migrating between the two services
    @property
    def scoped_deletes(self) -> bool:
        return self._composer.scoped_deletes

    @scoped_deletes.setter
    def scoped_deletes(self, value: bool) -> None:
        for shard in self._shards.values():
            shard.live.scoped_deletes = value
        self._composer.scoped_deletes = value

    @property
    def delete_rebuild_fraction(self) -> float:
        return self._composer.delete_rebuild_fraction

    @delete_rebuild_fraction.setter
    def delete_rebuild_fraction(self, value: float) -> None:
        for shard in self._shards.values():
            shard.live.delete_rebuild_fraction = value
        self._composer.delete_rebuild_fraction = value

    @property
    def bulk_loads(self) -> bool:
        return self._composer.bulk_loads

    @bulk_loads.setter
    def bulk_loads(self, value: bool) -> None:
        for shard in self._shards.values():
            shard.live.bulk_loads = value
        self._composer.bulk_loads = value

    @property
    def window_cache_limit(self) -> int:
        return self._window_cache_limit

    @window_cache_limit.setter
    def window_cache_limit(self, value: int) -> None:
        self._window_cache_limit = value
        for shard in self._shards.values():
            shard.live.window_cache_limit = value
        self._composer.window_cache_limit = value

    def maintenance_cover(self, scheme_name: str) -> FDSet:
        """The embedded cover ``Hi`` the scheme's shard enforces."""
        return self._shards[scheme_name].cover

    def _shard(self, scheme_name: str) -> _SchemeShard:
        shard = self._shards.get(scheme_name)
        if shard is None:
            # raise the schema's own unknown-scheme error
            self.schema[scheme_name]
            raise SchemaError(f"no shard for scheme {scheme_name!r}")
        return shard

    # -- availability ------------------------------------------------------------

    def set_unavailable(self, statuses: Dict[str, str]) -> None:
        """Mark shards out of service for reads (name → status string,
        e.g. ``"quarantined"``).  The durable layer pushes its
        quarantine set here so the planner can route around sick
        shards: local window plans whose direct set avoids every
        unavailable shard keep serving, everything that would consult
        one (directly or through the global composer, whose answers
        join facts across *all* shards) raises
        :class:`ShardQuarantinedError` instead of returning silently
        stale rows.  Pass ``{}`` to restore full availability."""
        for name in statuses:
            self._shard(name)  # unknown-scheme check
        self._unavailable = dict(statuses)

    def unavailable_shards(self) -> Dict[str, str]:
        """The current out-of-service map (copy)."""
        return dict(self._unavailable)

    def set_primary(self, scheme_name: str, label: str) -> None:
        """Record which physical store now serves a shard — the
        replication layer's failover calls this after promoting a
        replica, so ``health()`` (and operators) can see the shard
        moved.  Unknown schemes raise, like every routing surface."""
        self._shard(scheme_name)
        self._primaries[scheme_name] = label

    def primary_of(self, scheme_name: str) -> str:
        """The label of the store serving a shard (``"primary"`` until
        a failover re-points it)."""
        self._shard(scheme_name)
        return self._primaries.get(scheme_name, "primary")

    def health(self) -> Dict[str, object]:
        """The in-memory sharded health surface: per-shard status (as
        pushed by :meth:`set_unavailable`), the schema epoch, and any
        in-flight migration."""
        shards = {
            name: self._unavailable.get(name, "serving")
            for name in self._shards
        }
        status = (
            "serving"
            if all(s == "serving" for s in shards.values())
            else "degraded"
        )
        return {
            "status": status,
            "shards": shards,
            "errors": {},
            "primaries": {
                name: self._primaries.get(name, "primary")
                for name in self._shards
            },
            "epoch": self.schema_version,
            "migration": self.migration_status(),
        }

    def _check_available(self, names: Iterable[str]) -> None:
        if not self._unavailable:
            return
        for name in names:
            status = self._unavailable.get(name)
            if status is not None:
                raise ShardQuarantinedError(name, status)

    # -- loading ---------------------------------------------------------------

    def load(self, state: DatabaseState) -> None:
        """Load a base state shard by shard (atomic across shards: a
        rejected relation unwinds the already-committed ones, so a
        violating state changes nothing)."""
        per_fresh: Dict[str, List[Tuple]] = {}
        for scheme, relation in state:
            shard = self._shard(scheme.name)
            seen: set = set()
            fresh: List[Tuple] = []
            for t in relation:
                if t in seen or shard.checker.contains(scheme.name, t):
                    continue
                seen.add(t)
                fresh.append(t)
            per_fresh[scheme.name] = fresh
        committed: List[str] = []
        try:
            for name, fresh in per_fresh.items():
                self._shards[name].load_fresh(fresh)
                committed.append(name)
        except InconsistentStateError:
            for name in committed:
                self._shards[name].rollback_fresh(per_fresh[name])
            raise
        self._composer.invalidate()
        # with the composer stale, journaling is pure waste until the
        # next sync re-arms it (drain resets the flag)
        for shard in self._shards.values():
            shard._needs_resync = True
            shard._journal.clear()

    def reload_shard(self, scheme_name: str, rows: Iterable[RowLike]) -> None:
        """Replace one shard's state wholesale with ``rows`` — the
        durable layer's repair path.  A *fresh* shard is built (fresh
        ``_FDIndex`` maintenance checker, fresh per-scheme tableau) and
        the rows re-validated through its checker, so whatever
        in-memory state the old shard accumulated before it was
        quarantined cannot leak into the repaired one.  The version
        counter continues from the old shard's so stamped query plans
        and merged-window caches see the change."""
        old = self._shard(scheme_name)
        fresh = _SchemeShard(
            old.scheme,
            self.report.scheme_restriction(scheme_name),
            self.stats,
            self.scoped_deletes,
            self.delete_rebuild_fraction,
            self.window_cache_limit,
            self.bulk_loads,
        )
        fresh.checker.load(
            DatabaseState(fresh.checker.schema, {scheme_name: list(rows)})
        )
        fresh.version = old.version + 1
        self._shards[scheme_name] = fresh
        self._composer.invalidate()
        self._merged_cache.clear()

    # -- schema evolution --------------------------------------------------------

    def _build_fresh_shard(
        self,
        scheme: RelationScheme,
        report: IndependenceReport,
        rows: Iterable[RowLike],
        op: EvolutionOp,
    ) -> _SchemeShard:
        """A fresh shard of the *new* epoch, its rows validated through
        a fresh checker — re-validation is what turns an ``add-fd`` into
        a decidable request: the data either satisfies the grown cover
        or refutes the evolution."""
        shard = _SchemeShard(
            scheme,
            report.scheme_restriction(scheme.name),
            self.stats,
            self.scoped_deletes,
            self.delete_rebuild_fraction,
            self.window_cache_limit,
            self.bulk_loads,
        )
        rows = list(rows)
        try:
            if rows:
                shard.checker.load(
                    DatabaseState(shard.checker.schema, {scheme.name: rows})
                )
        except InconsistentStateError as exc:
            self.stats.evolutions_rejected += 1
            raise EvolutionRejectedError(
                f"evolution rejected ({op.describe()}): stored rows of "
                f"{scheme.name!r} violate the evolved constraints ({exc}); "
                "old epoch left intact",
                reason=scheme.name,
            ) from exc
        return shard

    def _capture_rows(self, scheme_name: str) -> List[Dict[str, object]]:
        attrs = self._shards[scheme_name].scheme.attributes.names
        return [
            {a: t.value(a) for a in attrs}
            for t in self._shards[scheme_name].relation()
        ]

    def evolve(
        self,
        op: EvolutionOp,
        during: Optional[Callable[["ShardedWeakInstanceService"], None]] = None,
        hook: Optional[Callable[[str], None]] = None,
        pre_commit: Optional[
            Callable[[DatabaseSchema, FDSet, IndependenceReport], None]
        ] = None,
    ) -> EvolutionResult:
        """Apply one schema-evolution op with zero downtime.

        Protocol (every mutation before the final swap lands only on
        *fresh* objects, so any failure — rejection, injected crash,
        ``pre_commit`` error — leaves the old epoch fully serving):

        1. **Re-check** — :func:`~repro.core.independence.reanalyze`
           re-derives the Loop verdict only for closure-reachable
           schemes; a non-independent result raises
           :class:`EvolutionRejectedError` with the counterexample
           report attached.
        2. **Scoped rebuild** — only shards that are structurally
           redefined, newly produced, or whose maintenance cover
           changed are rebuilt (through the bulk chase kernel); every
           other shard is *kept*, untouched and serving throughout.
        3. **Migration journal** — writes accepted while a replacement
           is mid-build land on the still-serving old shard and in a
           per-shard migration journal (``during`` fires here: it is
           the seam tests and the server use to interleave traffic);
           the journal then replays onto the fresh shard, re-validated
           under the new cover.  A mid-migration delete on a
           *transformed* source falls back to re-capturing the
           transform (a projection's support count is not tracked).
        4. **Commit** — ``pre_commit`` (the durable layer's schema-WAL
           + manifest write) runs last before the in-memory swap; then
           the epoch bumps, planner/merged/query caches reset, the
           composer rebuilds over the new schema, and the retired
           epoch's changed relations are frozen for version-pinned
           reads.

        ``hook`` receives ``evolve.begin`` / ``evolve.mid-rebuild`` /
        ``evolve.journal-replay`` (the durable layer threads its crash
        points through it).
        """

        def fire(point: str) -> None:
            if hook is not None:
                hook(point)

        fire("evolve.begin")
        new_schema, new_fds_raw = op.apply(self.schema, self.fds)
        new_fds = as_fdset(new_fds_raw)
        delta = reanalyze(
            self.report,
            new_schema,
            new_fds,
            op.changed_attributes(self.schema, self.fds),
            op.structural_schemes(self.schema),
        )
        self.stats.independence_recheck_schemes += len(delta.rechecked)
        self.stats.independence_reused_schemes += len(delta.reused)
        if not delta.independent:
            self.stats.evolutions_rejected += 1
            raise EvolutionRejectedError(
                f"evolution rejected ({op.describe()}): evolved schema is "
                "not independent; old epoch left intact\n"
                + delta.report.summary(),
                report=delta.report,
            )
        new_report = delta.report
        new_covers = new_report.cover_assignment or {}
        old_covers = self.report.cover_assignment or {}

        sources = tuple(op.structural_schemes(self.schema))
        old_names = set(self._shards)
        rebuild: List[str] = []
        kept: List[str] = []
        for name in new_schema.names:
            if (
                name not in old_names
                or name in sources
                or old_covers.get(name) != new_covers.get(name)
            ):
                rebuild.append(name)
            else:
                kept.append(name)

        # arm the migration journal before capturing, so a concurrent
        # write between capture and replay is never lost (replay is
        # idempotent for the overlap: duplicate inserts dedup, absent
        # deletes no-op)
        tap: Dict[str, List[PyTuple[str, Tuple]]] = {
            name: []
            for name in set(sources) | (set(rebuild) & old_names)
        }
        self._migration_tap = tap
        try:
            capture = {src: self._capture_rows(src) for src in sources}
            migrated = op.migrate_relations(self.schema, capture)

            fresh: Dict[str, _SchemeShard] = {}
            for name in rebuild:
                self._migrating[name] = "rebuilding"
                fire("evolve.mid-rebuild")
                rows: Iterable[RowLike]
                if name in migrated:
                    rows = migrated[name]
                else:
                    # cover-only change: same scheme, rows re-validated
                    rows = list(self._shards[name].relation().tuples)
                fresh[name] = self._build_fresh_shard(
                    new_schema[name], new_report, rows, op
                )
                self._migrating[name] = "built"

            if during is not None:
                during(self)

            fire("evolve.journal-replay")
            replays = 0
            if any(o == "-" for src in sources for o, _ in tap[src]):
                # a transformed source lost a row mid-migration:
                # projections/joins have no per-row support counts, so
                # re-capture the transform wholesale (rare path)
                capture = {src: self._capture_rows(src) for src in sources}
                migrated = op.migrate_relations(self.schema, capture)
                for name, rows in migrated.items():
                    self._migrating[name] = "rebuilding"
                    fresh[name] = self._build_fresh_shard(
                        new_schema[name], new_report, rows, op
                    )
                    self._migrating[name] = "built"
            else:
                for src in sources:
                    src_attrs = self.schema[src].attributes.names
                    for o, t in tap[src]:
                        row = {a: t.value(a) for a in src_attrs}
                        for name, rows in op.migrate_relations(
                            self.schema, {src: [row]}
                        ).items():
                            target_shard = fresh.get(name)
                            if target_shard is None:
                                continue
                            self._migrating[name] = "replaying"
                            for r in rows:
                                replays += 1
                                outcome = target_shard.insert(r)
                                if not outcome.accepted:
                                    self.stats.evolutions_rejected += 1
                                    raise EvolutionRejectedError(
                                        f"evolution rejected "
                                        f"({op.describe()}): mid-migration "
                                        f"write on {src!r} violates the "
                                        f"evolved constraints of {name!r} "
                                        f"({outcome.reason}); old epoch "
                                        "left intact",
                                        reason=name,
                                    )
            for name in set(rebuild) & old_names:
                if name in sources:
                    continue
                # same-scheme rebuild: the journal replays verbatim
                target_shard = fresh[name]
                for o, t in tap[name]:
                    replays += 1
                    self._migrating[name] = "replaying"
                    if o == "+":
                        outcome = target_shard.insert(t)
                        if not outcome.accepted:
                            self.stats.evolutions_rejected += 1
                            raise EvolutionRejectedError(
                                f"evolution rejected ({op.describe()}): "
                                f"mid-migration write on {name!r} violates "
                                f"the evolved constraints "
                                f"({outcome.reason}); old epoch left intact",
                                reason=name,
                            )
                    else:
                        target_shard.delete(t)

            if pre_commit is not None:
                pre_commit(new_schema, new_fds, new_report)

            # -- the swap: from here on the new epoch is authoritative
            old_schema, old_fds = self.schema, self.fds
            old_shards = self._shards
            scoped = self.scoped_deletes
            fraction = self.delete_rebuild_fraction
            bulk = self.bulk_loads
            new_shards: Dict[str, _SchemeShard] = {}
            for scheme in new_schema:
                name = scheme.name
                if name in fresh:
                    shard = fresh[name]
                    base = old_shards.get(name)
                    shard.version = base.version + 1 if base is not None else 1
                    new_shards[name] = shard
                else:
                    new_shards[name] = old_shards[name]
            frozen: Dict[str, List[Tuple]] = {}
            for name, shard in old_shards.items():
                survivor = new_shards.get(name)
                if (
                    survivor is not None
                    and survivor.scheme.attributes == shard.scheme.attributes
                ):
                    # same name and attributes: the live shard keeps
                    # serving this relation through the old version too
                    continue
                frozen[name] = list(shard.relation().tuples)
            self._epochs[self.schema_version] = _EpochView(
                old_schema, old_fds, frozen
            )
            while len(self._epochs) > self.epoch_retention:
                self._epochs.pop(next(iter(self._epochs)))

            self._shards = new_shards
            self.schema = new_schema
            self.fds = new_fds
            self.report = new_report
            self.schema_version += 1
            self._closures = {
                s.name: new_fds.closure(s.attributes) for s in new_schema
            }
            self._plans.clear()
            self._merged_cache.clear()
            self._composer = LiveTableau(
                new_schema,
                new_fds,
                self.state,
                self.stats,
                scoped_deletes=scoped,
                delete_rebuild_fraction=fraction,
                window_cache_limit=self.window_cache_limit,
                bulk_loads=bulk,
            )
            for shard in new_shards.values():
                shard._needs_resync = True
                shard._journal.clear()
            self.stats.evolutions_applied += 1
            self.stats.migration_shards_rebuilt += len(fresh)
            self.stats.migration_shards_kept += len(kept)
            self.stats.migration_journal_replays += replays
            return EvolutionResult(
                op=op.describe(),
                epoch_from=self.schema_version - 1,
                epoch_to=self.schema_version,
                rechecked=delta.rechecked,
                reused=delta.reused,
                rebuilt=tuple(sorted(fresh)),
                kept=tuple(kept),
                journal_replays=replays,
            )
        finally:
            self._migration_tap = None
            self._migrating = {}

    def migration_status(self) -> Dict[str, object]:
        """Live migration state for ``health()``/the CLI ``schema`` op:
        the current epoch, the retained pinnable epochs, and any shard
        currently mid-migration with its phase."""
        return {
            "epoch": self.schema_version,
            "retained_epochs": sorted(self._epochs),
            "migrating": dict(self._migrating),
        }

    # -- version-pinned reads ----------------------------------------------------

    def _epoch_view(self, version: int) -> _EpochView:
        view = self._epochs.get(version)
        if view is None:
            raise SchemaError(
                f"unknown schema version {version} (current "
                f"{self.schema_version}, retained {sorted(self._epochs)})"
            )
        return view

    def _epoch_state(self, version: int) -> DatabaseState:
        """The pinned epoch's state: frozen rows for relations a later
        migration changed (earliest freeze at or after the pinned
        version — the relation's content when it stopped being live),
        live shard rows for relations still compatible — so writes to
        untouched schemes stay visible through old versions."""
        view = self._epochs[version]
        rows: Dict[str, List[Tuple]] = {}
        for scheme in view.schema:
            name = scheme.name
            found: Optional[List[Tuple]] = None
            for v in sorted(self._epochs):
                if v < version:
                    continue
                frozen = self._epochs[v].frozen.get(name)
                if frozen is not None and (
                    v == version
                    or self._epochs[v].schema[name].attributes
                    == scheme.attributes
                ):
                    found = frozen
                    break
            if found is None:
                live = self._shards.get(name)
                if (
                    live is not None
                    and live.scheme.attributes == scheme.attributes
                ):
                    found = list(live.relation().tuples)
            if found is None:  # pragma: no cover - defensive
                raise SchemaError(
                    f"schema version {version} is no longer fully "
                    f"retained (relation {name!r} was migrated away)"
                )
            rows[name] = list(found)
        return DatabaseState(view.schema, rows)

    # -- updates ---------------------------------------------------------------

    def _tap_op(self, scheme_name: str, op: str, t: Tuple) -> None:
        """Record one committed op in the migration journal while the
        scheme's replacement shard is mid-build (writes keep landing on
        the still-serving old shard; the journal replays them onto the
        fresh one before the epoch swap)."""
        tap = self._migration_tap
        if tap is not None and scheme_name in tap:
            tap[scheme_name].append((op, t))

    def insert(self, scheme_name: str, row: RowLike) -> InsertOutcome:
        """Validate and commit one insertion against its own shard —
        no other shard, and not the global tableau, is touched."""
        outcome = self._shard(scheme_name).insert(row)
        if outcome.accepted and not outcome.reason:
            self._tap_op(scheme_name, "+", outcome.tuple)
        return outcome

    def delete(self, scheme_name: str, row: RowLike) -> bool:
        """Delete a tuple from its shard; returns whether it existed."""
        shard = self._shard(scheme_name)
        t = shard.checker.coerce_tuple(scheme_name, row)
        if not shard.delete(t):
            return False
        self._tap_op(scheme_name, "-", t)
        return True

    def insert_many(
        self, ops: Iterable[PyTuple[str, RowLike]]
    ) -> List[InsertOutcome]:
        """Insert a batch, driving each touched shard's fixpoint once
        instead of once per insert (validation is per-tuple O(1)
        either way)."""
        outcomes: List[InsertOutcome] = []
        touched: Dict[str, _SchemeShard] = {}
        for scheme_name, row in ops:
            shard = self._shard(scheme_name)
            outcome = shard.insert(row, drive=False)
            outcomes.append(outcome)
            if outcome.accepted and not outcome.reason:
                self._tap_op(scheme_name, "+", outcome.tuple)
                touched[scheme_name] = shard
        for shard in touched.values():
            shard.drive_pending()
        return outcomes

    # -- the window planner ----------------------------------------------------

    def _plan(self, target: AttributeSet) -> WindowPlan:
        plan = self._plans.get(target)
        if plan is not None:
            return plan
        if not target <= self.schema.universe:
            raise SchemaError(
                f"window attributes {target - self.schema.universe} are "
                f"outside the universe {self.schema.universe}"
            )
        direct = tuple(
            s.name for s in self.schema if target <= s.attributes
        )
        if direct:
            direct_set = set(direct)
            # sound iff no scheme can *derive* an X-total row it does
            # not store outright: a row of rj only ever grounds
            # attributes inside cl_F(Rj)
            local = all(
                s.name in direct_set or not target <= self._closures[s.name]
                for s in self.schema
            )
        else:
            local = False
        plan = WindowPlan(local=local, direct=direct)
        self._plans[target] = plan
        if len(self._plans) > self.window_cache_limit:
            # FIFO bound (no LRU refresh on hit): plans are pure
            # functions of the schema and cheap to recompute, so
            # evicting a hot one costs one closure-subset pass.  The
            # eviction tolerates a concurrent evictor (the server's
            # shard-parallel readers may plan at once; losing the race
            # just means the bound is enforced by the other thread).
            try:
                self._plans.pop(next(iter(self._plans)), None)
            except (StopIteration, RuntimeError):
                pass
        return plan

    # -- the global composer ---------------------------------------------------

    def _sync_composer(self) -> None:
        """Bring the global tableau up to date with the shards by
        replaying their journals (or by scheduling a rebuild when a
        journal collapsed or the composer was never built)."""
        composer = self._composer
        if not composer.live:
            # nothing to replay into: drain (and discard) so the
            # rebuild from state() does not see the ops twice
            for shard in self._shards.values():
                shard.drain_journal()
            return
        pending: List[PyTuple[str, List[PyTuple[str, Tuple]]]] = []
        rebuild = False
        for shard in self._shards.values():
            ops = shard.drain_journal()
            if ops is None:
                rebuild = True
            elif ops:
                pending.append((shard.name, ops))
        if rebuild:
            # the caller's window()/representative() call rebuilds the
            # composer (ensure) immediately after this returns, so the
            # journals drain_journal just re-armed are genuinely useful
            # for the next sync — do not disarm them here
            composer.invalidate()
            return
        if not pending:
            return
        self.stats.composer_syncs += 1
        appended = False
        for name, ops in pending:
            self.stats.composer_synced_ops += len(ops)
            for op, t in ops:
                if op == "+":
                    composer.append(name, t)
                    appended = True
                else:
                    composer.retract(name, t)
        if appended and composer.live:
            if not composer.drive():  # pragma: no cover - Theorem 3
                # every replayed insert was locally validated, so the
                # composed state is satisfying and the chase cannot
                # contradict; reaching this means an engine bug
                raise InconsistentStateError(
                    "composer chase contradicted locally-validated shards"
                )

    # -- queries ---------------------------------------------------------------

    def window(
        self, attrset: AttrsLike, version: Optional[int] = None
    ) -> RelationInstance:
        """The derivable ``X``-facts of the current state — from the
        direct shards alone when the planner proves that equivalent,
        otherwise from the journal-synced global composer.

        ``version`` pins the answer to a retained schema epoch: the
        window is derived one-shot from that epoch's state under its
        own FDs (correct, not cached — pinned reads are the transition
        escape hatch, not the fast path)."""
        if version is not None and version != self.schema_version:
            view = self._epoch_view(version)
            target = AttributeSet(attrset)
            if not target <= view.schema.universe:
                raise SchemaError(
                    f"window attributes {target - view.schema.universe} are "
                    f"outside version {version}'s universe "
                    f"{view.schema.universe}"
                )
            self._check_available(self._unavailable)
            self.stats.window_queries += 1
            from repro.weak.representative import window as one_shot_window

            return one_shot_window(self._epoch_state(version), view.fds, target)
        target = AttributeSet(attrset)
        self.stats.window_queries += 1
        plan = self._plan(target)
        if not plan.local:
            # a composed answer joins facts through every shard, so any
            # unavailable shard poisons it
            self._check_available(self._unavailable)
            self.stats.global_windows += 1
            self._sync_composer()
            return self._composer.window(target)
        # local plan: only the direct shards matter — the closure guard
        # proved no other shard can contribute, so quarantines elsewhere
        # do not block this window
        self._check_available(plan.direct)
        self.stats.shard_windows += 1
        if len(plan.direct) == 1:
            return self._shards[plan.direct[0]].window(target)
        versions = tuple(self._shards[n].version for n in plan.direct)
        cached = self._merged_cache.get(target)
        if cached is not None and cached[0] == versions:
            self.stats.window_cache_hits += 1
            # refresh LRU position, like LiveTableau's cache (insertion
            # order doubles as LRU order)
            del self._merged_cache[target]
            self._merged_cache[target] = cached
            return cached[1]
        seen: Dict[PyTuple[object, ...], Tuple] = {}
        for name in plan.direct:
            # internal consultation, not a served query: shard-cache
            # hits here must not count (one query would score several)
            for t in self._shards[name].window(target, count_hits=False):
                seen.setdefault(tuple(t.value(a) for a in target), t)
        merged = RelationInstance(target, list(seen.values()))
        self._merged_cache[target] = (versions, merged)
        if len(self._merged_cache) > self.window_cache_limit:
            self._merged_cache.pop(next(iter(self._merged_cache)))
            self.stats.window_cache_evictions += 1
        return merged

    def representative(self) -> ChaseTableau:
        """The globally chased tableau ``I(p)`` (journal-synced first;
        read-only, like the base service's).  Raises
        :class:`ShardQuarantinedError` while any shard is out of
        service — the global tableau is only meaningful over all of
        them."""
        self._check_available(self._unavailable)
        self._sync_composer()
        return self._composer.ensure()

    # -- query-engine hooks ------------------------------------------------------

    def _query_route(
        self, target: AttributeSet, always_compose: bool = False
    ) -> PyTuple[str, PyTuple[str, ...]]:
        """Routing for one scan target: the PR 4 closure guard
        (:meth:`_plan`) decides whether the ``[target]``-window is
        answerable from the direct shards alone; otherwise — or under
        ``always_compose``, the benchmark baseline — the leaf reads
        the journal-synced global composer and the result's validity
        depends on *every* shard."""
        if not always_compose:
            plan = self._plan(target)
            if plan.local:
                self._check_available(plan.direct)
                return ("shards", plan.direct)
        else:
            # surface the same universe check _plan would have run
            if not target <= self.schema.universe:
                raise SchemaError(
                    f"window attributes {target - self.schema.universe} are "
                    f"outside the universe {self.schema.universe}"
                )
        # composer answers depend on every shard
        self._check_available(self._unavailable)
        return ("composer", tuple(self._shards))

    def _query_stamps(self, names: Sequence[str]) -> PyTuple[int, ...]:
        return tuple(self._shards[n].version for n in names)

    def _query_scan(
        self,
        target: AttributeSet,
        bindings: Sequence[PyTuple[str, object]],
        route: str,
        shards: Sequence[str],
    ) -> RelationInstance:
        if route == "composer":
            self.stats.query_composer_scans += 1
            self._sync_composer()
            return self._composer.filtered_window(target, bindings)
        self.stats.query_shard_scans += 1
        if len(shards) == 1:
            return self._shards[shards[0]].live.filtered_window(target, bindings)
        # several schemes store the target outright: dedup-union of the
        # shard projections, exactly like the window() merge path
        seen: Dict[PyTuple[object, ...], Tuple] = {}
        for name in shards:
            for t in self._shards[name].live.filtered_window(target, bindings):
                seen.setdefault(tuple(t.value(a) for a in target), t)
        return RelationInstance(target, list(seen.values()))

    def query(self, query, version: Optional[int] = None) -> RelationInstance:
        """Evaluate a relational query (see
        :meth:`~repro.weak.service.WindowQueryAPI.query`); ``version``
        pins evaluation to a retained epoch's state and FDs via the
        naive from-scratch evaluator (pinned reads bypass every cache
        by construction)."""
        if version is not None and version != self.schema_version:
            view = self._epoch_view(version)
            self._check_available(self._unavailable)
            from repro.query.naive import evaluate_naive

            return evaluate_naive(query, self._epoch_state(version), view.fds)
        return self._query_engine().run(query)

    # -- introspection ----------------------------------------------------------

    def state(self) -> DatabaseState:
        """Immutable snapshot of the union of the shard states."""
        return DatabaseState(
            self.schema,
            {
                name: list(shard.relation().tuples)
                for name, shard in self._shards.items()
            },
        )

    def total_tuples(self) -> int:
        return sum(shard.total_tuples() for shard in self._shards.values())

    @property
    def live(self) -> bool:
        """Is the *global* tableau current?  (Shards maintain their own
        tableaus; this mirrors the base service's notion.)"""
        return self._composer.live

    def shard_names(self) -> PyTuple[str, ...]:
        return tuple(self._shards)

    def __repr__(self) -> str:
        return (
            f"ShardedWeakInstanceService<shards={len(self._shards)}, "
            f"tuples={self.total_tuples()}, composer_live={self.live}>"
        )
