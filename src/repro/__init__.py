"""repro — a reproduction of Graham & Yannakakis,
*Independent Database Schemas* (PODS 1982 / JCSS 1984).

A database schema ``D`` is **independent** w.r.t. constraints
``Σ = F ∪ {*D}`` when checking every relation locally guarantees the
whole state has a weak instance.  This library implements the paper's
polynomial decision procedure end to end, along with the dependency
theory it stands on: FDs/MVDs/JDs, closures and covers, the chase,
weak instances, acyclic-schema machinery, counterexample construction,
and the fast maintenance path independence buys.

Quickstart::

    from repro import DatabaseSchema, analyze

    schema = DatabaseSchema.parse("CT(C,T); CS(C,S); CHR(C,H,R)")
    report = analyze(schema, "C -> T; C H -> R")
    assert report.independent
    print(report.summary())

See ``examples/`` for full scenarios, ``README.md`` for the paper →
module map, and ``docs/architecture.md`` for the pipeline walkthrough.
"""

from repro.chase import (
    chase_fds,
    chase_state,
    is_globally_satisfying,
    is_locally_satisfying,
    satisfies,
    weak_instance,
)

# ``repro.chase`` stays bound to the subpackage: re-exporting the
# *function* of the same name here used to shadow it, breaking dotted
# access and ``python -m pydoc repro.chase.engine``.  The full chase is
# ``repro.chase.chase`` (or ``chase_state`` for build-and-chase).
import repro.chase as chase  # noqa: E402,F401
from repro.core import (
    IndependenceReport,
    MaintenanceChecker,
    analyze,
    embedding_report,
    embeds_cover,
    is_independent,
    preserves_dependencies,
)
from repro.data import DatabaseState, RelationInstance, Tuple
from repro.deps import FD, FDSet, JoinDependency, MVD, closure, fd, fds, minimal_cover
from repro.dsl import Scenario, parse_scenario, parse_state
from repro.exceptions import (
    ChaseBudgetExceeded,
    DependencyError,
    InconsistentStateError,
    InstanceError,
    NotIndependentError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.schema import (
    AttributeSet,
    DatabaseSchema,
    RelationScheme,
    attrs,
    gyo_reduction,
    is_acyclic,
    join_tree,
)
from repro.query import QueryEngine, QueryExplain, parse_query, scan
from repro.weak import (
    WeakInstanceService,
    full_reduce,
    representative_instance,
    window,
)

__version__ = "1.0.0"

__all__ = [
    # schema
    "AttributeSet",
    "attrs",
    "RelationScheme",
    "DatabaseSchema",
    "is_acyclic",
    "gyo_reduction",
    "join_tree",
    # dependencies
    "FD",
    "fd",
    "fds",
    "FDSet",
    "MVD",
    "JoinDependency",
    "closure",
    "minimal_cover",
    # data
    "Tuple",
    "RelationInstance",
    "DatabaseState",
    # chase & satisfaction
    "chase",
    "chase_fds",
    "chase_state",
    "satisfies",
    "weak_instance",
    "is_locally_satisfying",
    "is_globally_satisfying",
    # weak instances
    "representative_instance",
    "window",
    "full_reduce",
    "WeakInstanceService",
    # relational queries
    "scan",
    "parse_query",
    "QueryEngine",
    "QueryExplain",
    # the paper's core
    "analyze",
    "is_independent",
    "IndependenceReport",
    "embedding_report",
    "embeds_cover",
    "preserves_dependencies",
    "MaintenanceChecker",
    # DSL
    "parse_scenario",
    "parse_state",
    "Scenario",
    # errors
    "ReproError",
    "ParseError",
    "SchemaError",
    "DependencyError",
    "InstanceError",
    "InconsistentStateError",
    "ChaseBudgetExceeded",
    "NotIndependentError",
    "QueryError",
    "__version__",
]
