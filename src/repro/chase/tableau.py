"""Chase tableaux with persistent incremental indexes.

A :class:`ChaseTableau` is the universal relation ``I(p)`` of Section 2:
one row per stored tuple, padded out to the universe ``U`` with fresh
variables.  Symbols (constants and variables) are interned integers
managed by a union-find, so the FD-rule's "replace all occurrences"
is a single union operation.

Beyond the rows themselves, the tableau maintains the index structures
the incremental chase engine (:mod:`repro.chase.engine`) is built on:

* an **occurrence index** mapping each symbol class root to the set of
  ``(row, column)`` positions holding a member of that class, so a
  merge knows exactly which rows it touched;
* a **dirty-row worklist**: every row changed since the last
  :meth:`drain_dirty` call, together with the columns that changed, so
  a chase fixpoint pass revisits only rows whose symbols moved;
* a lazily materialized **per-attribute value index**
  (:meth:`value_index`): for a column, the partition of rows by their
  current symbol class — the FD-rule's row-pair lookup for
  single-attribute left-hand sides;
* a **version stamp** (:attr:`version`) bumped on every row addition,
  merge, and retraction, keying memoized derived data such as
  :meth:`resolved_rows` and the engine's projection caches;
* an opt-in **merge log** (:meth:`enable_merge_log`): one
  :class:`MergeEvent` per successful union, recording which row pair
  under which FD justified it, indexed by participating row and by
  (current) left-hand-side class — the provenance that
  :meth:`retraction_impact` walks to scope a delete.

Two facilities exist specifically for the **column-major bulk chase
kernel** (:mod:`repro.chase.bulk`):

* :meth:`bulk_ingest` builds a fresh tableau column by column —
  constants interned and variables allocated in per-column batches,
  with none of ``add_row``'s per-cell occurrence bookkeeping.  The
  occurrence index of an ingested (or bulk-chased) tableau is
  **deferred**: it is rebuilt in one pass the first time something
  actually reads it (a merge, a retraction, ``live_row_matching``),
  so from-scratch chases that never do incremental work never pay
  for it.
* :meth:`install_bulk_chase` is the kernel's hand-off: it accounts the
  kernel's merges into :attr:`version`, installs the batch-recorded
  merge provenance into the log indexes, and invalidates every derived
  structure the kernel bypassed.  After it returns the tableau is
  indistinguishable from one chased row-at-a-time (the invariant
  ``check_index_invariants`` verifies and the bulk oracle suite pins).

Row **retraction** (:meth:`retract_row`) is the delete-side
counterpart of the incremental chase: instead of discarding a chased
tableau because one source tuple went away, the tableau computes the
retracted row's *footprint* — the symbol classes whose unions depend
(transitively) on merges that row participated in — dissolves exactly
those classes back to their original interned symbols, and re-seeds
the dirty worklist with the rows they touched.  Driving the ordinary
FD fixpoint afterwards (``IncrementalFDChaser.rechase_scoped``)
re-derives every union still justified by the surviving rows, so the
tableau ends observationally equivalent to a from-scratch chase of the
state minus the tuple while untouched partitions, value indexes, and
occurrence-index entries stay live.

All indexes are maintained through :meth:`ChaseTableau.merge`; calling
``tableau.symbols.merge`` directly still works but bypasses index
maintenance, so only do that on tableaux you will not chase afterwards
(the naive reference engine in :mod:`repro.chase.reference` does this
deliberately, to preserve the un-indexed baseline).  Retraction
additionally requires every merge to have flowed through
:meth:`ChaseTableau.merge` *with provenance* while the log was enabled
— any unlogged merge (or any non-``"state"`` row, whose existence the
log cannot justify) marks the log incomplete and
:meth:`retraction_impact` reports the whole tableau as affected.

The tableau is the shared substrate of every chase in the library:
satisfaction testing (Section 2), FD implication under ``F ∪ {*D}``
(Section 3, two-row tableaux), the lossless-join test of [ABU], and
weak-instance materialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.data.relations import RelationInstance
from repro.data.states import DatabaseState
from repro.data.tuples import Tuple
from repro.data.values import Null, is_null
from repro.exceptions import InstanceError
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.util.unionfind import IntUnionFind

_CONST_SENTINEL = object()
_ABSENT = object()


class SymbolTable:
    """Interned symbols with union-find merging.

    Every symbol is an ``int``.  A symbol is a *constant* when it has an
    associated value, otherwise a *variable* (the paper's ndv/dv).
    Merging two constants with different values is a *contradiction*;
    merging a constant with a variable promotes the class to constant.
    """

    __slots__ = ("_uf", "_const", "_by_value", "_interned", "find")

    def __init__(self) -> None:
        self._uf = IntUnionFind()
        self._const: Dict[int, Any] = {}
        self._by_value: Dict[Any, int] = {}
        # symbol -> value at intern time; never mutated, so class
        # dissolution can restore a symbol's constant-ness after the
        # root-keyed _const entry has been merged away
        self._interned: Dict[int, Any] = {}
        # bound method, so hot loops resolve symbols without an extra
        # attribute hop (`find = tableau.symbols.find` is pervasive)
        self.find = self._uf.find

    def fresh_variable(self) -> int:
        return self._uf.add_next()

    def constant(self, value: Any, namespace: Any = None) -> int:
        """The unique symbol for a constant value (interned).

        ``namespace`` partitions the intern table: the tableau interns
        per *column*, so the same value in two columns gets two
        symbols.  Nothing in the chase ever compares symbols across
        columns (FD agreement, value indexes, and join keys are all
        per-column; queries compare resolved *values*), and keeping the
        columns apart keeps each symbol class — and therefore each
        retraction footprint — within one column's derivation family
        instead of bridging unrelated rows that merely reuse a value.
        """
        if is_null(value):
            raise InstanceError(
                "labelled nulls cannot enter a tableau as constants; "
                "use fresh variables instead"
            )
        key = (namespace, value)
        try:
            return self._by_value[key]
        except KeyError:
            pass
        except TypeError:
            raise InstanceError(f"unhashable constant {value!r}") from None
        sym = self.fresh_variable()
        self._const[sym] = value
        self._by_value[key] = sym
        self._interned[sym] = value
        return sym

    def is_interned(self, sym: int) -> bool:
        """Was the symbol created as a constant (as opposed to a
        variable whose class later acquired one)?"""
        return sym in self._interned

    def interned_symbol(self, value: Any, namespace: Any = None) -> Optional[int]:
        """The symbol :meth:`constant` interned for the value, or
        ``None`` — a lookup that never interns."""
        try:
            return self._by_value.get((namespace, value))
        except TypeError:
            return None

    def value_of(self, sym: int) -> Any:
        """The constant value of the symbol's class, or ``_CONST_SENTINEL``."""
        return self._const.get(self.find(sym), _CONST_SENTINEL)

    def is_constant(self, sym: int) -> bool:
        return self.find(sym) in self._const

    def merge(self, a: int, b: int) -> PyTuple[bool, Optional[PyTuple[Any, Any]]]:
        """Union the classes of ``a`` and ``b``.

        Returns ``(changed, conflict)``: ``conflict`` is the pair of
        distinct constant values when both classes were constants —
        the chase's contradiction.
        """
        changed, conflict, _, _ = self.merge_roots(a, b)
        return changed, conflict

    def merge_roots(
        self, a: int, b: int
    ) -> PyTuple[bool, Optional[PyTuple[Any, Any]], int, int]:
        """Union with full merge provenance.

        Returns ``(changed, conflict, survivor, absorbed)``: the class
        root that survived the union and the root whose class was
        folded into it.  Index maintenance
        (:meth:`ChaseTableau.merge`) needs the absorbed root to know
        which positions changed class.
        """
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return False, None, ra, ra
        ca = self._const.get(ra, _CONST_SENTINEL)
        cb = self._const.get(rb, _CONST_SENTINEL)
        if ca is not _CONST_SENTINEL and cb is not _CONST_SENTINEL:
            if ca != cb:
                return False, (ca, cb), ra, rb
        root = self._uf.union(ra, rb)
        absorbed = rb if root == ra else ra
        winner = ca if ca is not _CONST_SENTINEL else cb
        if winner is not _CONST_SENTINEL:
            self._const.pop(ra, None)
            self._const.pop(rb, None)
            self._const[root] = winner
        return True, None, root, absorbed

    def resolve_value(self, sym: int) -> Any:
        """Constant value, or a :class:`Null` labelled by the class root."""
        root = self.find(sym)
        val = self._const.get(root, _CONST_SENTINEL)
        if val is _CONST_SENTINEL:
            return Null(root)
        return val

    def dissolve(self, root: int, members: Iterable[int]) -> None:
        """Break the class rooted at ``root`` back into singletons.

        ``members`` must enumerate **every** symbol of the class (the
        tableau derives them from the occurrence index, which is why
        retraction only supports symbols that live in rows).  Interned
        members get their constant-ness back — dissolution splits a
        class into the symbols it was built from, and an interned
        symbol *is* its value.
        """
        self._const.pop(root, _CONST_SENTINEL)
        self._uf.reset_singletons(members)
        self._uf.reset_singletons((root,))
        interned = self._interned
        for s in members:
            value = interned.get(s, _CONST_SENTINEL)
            if value is not _CONST_SENTINEL:
                self._const[s] = value
        value = interned.get(root, _CONST_SENTINEL)
        if value is not _CONST_SENTINEL:
            self._const[root] = value


@dataclass(frozen=True)
class RowOrigin:
    """Provenance of a tableau row (for traces and counterexamples)."""

    kind: str  # "state", "seed", "jd"
    scheme: Optional[str] = None
    detail: str = ""


@dataclass(frozen=True)
class MergeEvent:
    """One logged FD-rule union: which row pair, agreeing on which
    left-hand-side columns, equated which two symbols (in ``col``).

    ``sym_a``/``sym_b`` are the symbols as merged (not resolved); after
    the union they resolve to one root, which identifies the class the
    event contributed to.  ``fd`` is kept for introspection only — the
    taint computation needs just the rows and ``lhs_cols``.
    """

    row_a: int
    row_b: int
    col: int
    sym_a: int
    sym_b: int
    lhs_cols: PyTuple[int, ...]
    fd: Optional[Any] = None


@dataclass
class RetractionImpact:
    """The footprint of retracting one row (see :meth:`ChaseTableau.retraction_impact`).

    ``complete=False`` means the merge log cannot scope this tableau
    (logging disabled, an unlogged/unprovenanced merge, or derived
    rows); callers must treat the whole tableau as affected — the
    weak-instance service falls back to a rebuild in that case, and
    :meth:`ChaseTableau.retract_row` refuses to run.
    """

    row: int
    complete: bool
    tainted_roots: Set[int] = field(default_factory=set)
    tainted_events: Set[int] = field(default_factory=set)
    affected_rows: Set[int] = field(default_factory=set)
    changed_cols: Set[int] = field(default_factory=set)
    #: the row resolved to *values* before retraction (constants, or
    #: labelled nulls for variable positions) — the window
    #: revalidation's record of what the deleted row contributed
    resolved_values: PyTuple[Any, ...] = ()


class ChaseTableau:
    """Rows of interned symbols over a fixed universe, with incremental
    indexes (see the module docstring for the index inventory)."""

    __slots__ = (
        "universe",
        "_cols",
        "_colidx",
        "symbols",
        "_rows",
        "_origins",
        "_occ",
        "_occ_stale",
        "_all_columnar",
        "_version_base",
        "_dirty",
        "_attr_index",
        "_shared",
        "_merge_count",
        "_resolved_cache",
        "_retracted",
        "_log_enabled",
        "_log_gap",
        "_derived_rows",
        "_merge_log",
        "_events_by_row",
        "_events_by_root",
        "_events_by_union",
        "_next_event_id",
        "_events_stale",
    )

    def __init__(self, universe: AttrsLike):
        uni = AttributeSet(universe)
        if not uni:
            raise InstanceError("a tableau needs a non-empty universe")
        self.universe = uni
        self._cols: PyTuple[str, ...] = uni.names
        self._colidx = {a: i for i, a in enumerate(self._cols)}
        self.symbols = SymbolTable()
        self._rows: List[PyTuple[int, ...]] = []
        self._origins: List[RowOrigin] = []
        # root -> list of positions (row * ncols + col) held by the class.
        self._occ: Dict[int, List[int]] = {}
        # bulk paths (ingest, bulk chase) defer occurrence maintenance:
        # while stale, readers rebuild the index in one pass on demand
        # and add_row skips its per-cell updates (the rebuild covers
        # them).  From-scratch chases that never merge incrementally or
        # retract never pay for the index at all.
        self._occ_stale = False
        # every row so far was built through the per-column symbol
        # discipline (constants interned per column, padding variables
        # fresh) — the invariant the bulk kernel's "a symbol class
        # lives in exactly one column" reasoning rests on.  Cleared by
        # any direct add_row/seed_row with caller-supplied symbols.
        self._all_columnar = True
        # version floor carried over from a predecessor tableau (see
        # offset_version_base): keeps version stamps monotone across
        # service rebuilds so a version-keyed cache can never mistake
        # a fresh tableau for the one it replaced
        self._version_base: PyTuple[int, int] = (0, 0)
        # dirty worklist: row -> set of changed columns, or None = all.
        self._dirty: Dict[int, Optional[Set[int]]] = {}
        # lazily materialized per-column value index: col -> root -> rows.
        self._attr_index: Dict[int, Dict[int, Set[int]]] = {}
        # for each materialized column, the roots shared by ≥2 rows —
        # the only classes the FD-rule can ever fire on.
        self._shared: Dict[int, Set[int]] = {}
        self._merge_count = 0
        self._resolved_cache: Optional[PyTuple[PyTuple[int, int], List]] = None
        # retracted row slots: excluded from projections, the value
        # indexes, and the engine; kept in _rows/_occ so positions stay
        # stable and class dissolution can enumerate every symbol.
        self._retracted: Set[int] = set()
        # merge log (opt-in, see enable_merge_log): event id -> entry
        # tuple (row_a, row_b, col, sym_a, sym_b, lhs_cols, fd), in
        # firing order, plus the two access paths the taint walk needs
        # — by participating row and by (current) lhs class root.  The
        # root-keyed lists ride along with the occurrence buckets:
        # merging two classes concatenates their event lists.  Pruned
        # events leave stale ids behind in the row/root lists; readers
        # filter against _merge_log membership.
        self._log_enabled = False
        self._log_gap = False
        self._derived_rows = 0
        self._merge_log: Dict[int, PyTuple] = {}
        self._events_by_row: Dict[int, List[int]] = {}
        self._events_by_root: Dict[int, List[int]] = {}
        # events keyed by the class their *union* lives in (as opposed
        # to _events_by_root, keyed by lhs dependency): dissolving a
        # class prunes exactly this list, so the log always holds one
        # event per live union — no duplicate accumulation across
        # delete/re-insert cycles
        self._events_by_union: Dict[int, List[int]] = {}
        self._next_event_id = 0
        # pruned-event ids linger in _events_by_root lists under roots
        # the retraction never visited; this counts them so the index
        # can be swept when the stale mass rivals the live log
        self._events_stale = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_state(cls, state: DatabaseState, columnar: bool = True) -> "ChaseTableau":
        """``I(p)``: pad every stored tuple to ``U`` with fresh variables.

        ``columnar=True`` (the default) builds through
        :meth:`bulk_ingest`: column-major interning, symbol ids
        allocated column by column, no per-cell occurrence bookkeeping
        — the layout the bulk chase kernel's column sweeps want, and
        observationally identical to a row-at-a-time construction.
        ``columnar=False`` restores the row-at-a-time build whose
        row-contiguous symbol allocation the *incremental* engine's
        access pattern prefers — each engine is measurably faster on
        its matching layout, so benchmark baselines pin this explicitly.
        """
        tab = cls(state.schema.universe)
        if columnar:
            ingest = tab.bulk_ingest()
            for scheme, relation in state:
                origin = RowOrigin("state", scheme.name)
                for t in relation:
                    ingest.add_padded(scheme.attributes, t, origin)
            ingest.finish()
        else:
            for scheme, relation in state:
                origin = RowOrigin("state", scheme.name)
                for t in relation:
                    tab.add_padded(scheme.attributes, t, origin)
        return tab

    @classmethod
    def from_relation(cls, universe: AttrsLike, relation: RelationInstance,
                      scheme_name: str = "r", columnar: bool = True) -> "ChaseTableau":
        tab = cls(universe)
        origin = RowOrigin("state", scheme_name)
        if columnar:
            ingest = tab.bulk_ingest()
            for t in relation:
                ingest.add_padded(relation.attributes, t, origin)
            ingest.finish()
        else:
            for t in relation:
                tab.add_padded(relation.attributes, t, origin)
        return tab

    def bulk_ingest(self) -> "BulkIngest":
        """Column-major batch construction (must be the first thing
        that ever touches the tableau; see :class:`BulkIngest`)."""
        return BulkIngest(self)

    def add_padded(self, attrset: AttributeSet, t: Tuple, origin: RowOrigin) -> int:
        """Add a tuple over a sub-scheme, padded with fresh variables."""
        row = []
        for a in self._cols:
            if a in attrset:
                row.append(self.symbols.constant(t.value(a), a))
            else:
                row.append(self.symbols.fresh_variable())
        # constants interned per column + fresh padding: the per-column
        # symbol discipline holds, so bulk eligibility is preserved
        return self.add_row(tuple(row), origin, _columnar=True)

    def add_row(
        self, syms: PyTuple[int, ...], origin: RowOrigin, _columnar: bool = False
    ) -> int:
        ncols = len(self._cols)
        if len(syms) != ncols:
            raise InstanceError("row arity does not match the universe")
        if origin is None or origin.kind != "state":
            # seed/jd rows exist for reasons the merge log cannot see,
            # so retraction cannot scope a tableau containing them
            self._derived_rows += 1
        if not _columnar:
            # caller-supplied symbols may cross columns, so the bulk
            # kernel's per-column class reasoning no longer applies
            self._all_columnar = False
        i = len(self._rows)
        self._rows.append(syms)
        self._origins.append(origin)
        find = self.symbols.find
        base = i * ncols
        occ = self._occ
        occ_live = not self._occ_stale
        for c, sym in enumerate(syms):
            root = find(sym)
            if occ_live:
                bucket = occ.get(root)
                if bucket is None:
                    occ[root] = [base + c]
                else:
                    bucket.append(base + c)
            col_index = self._attr_index.get(c)
            if col_index is not None:
                members = col_index.get(root)
                if members is None:
                    col_index[root] = {i}
                else:
                    members.add(i)
                    if len(members) == 2:
                        self._shared[c].add(root)
        self._dirty[i] = None  # new rows are dirty in every column
        return i

    def seed_row(self, shared: Dict[str, int], origin: RowOrigin) -> int:
        """Add a row with given symbols in some columns, fresh elsewhere
        (used by implication tableaux)."""
        row = []
        for a in self._cols:
            row.append(shared.get(a, self.symbols.fresh_variable()))
        return self.add_row(tuple(row), origin)

    # -- merging (index-maintaining) ------------------------------------------

    def merge(
        self,
        a: int,
        b: int,
        row_a: int = -1,
        row_b: int = -1,
        col: int = -1,
        lhs_cols: PyTuple[int, ...] = (),
        fd: Optional[Any] = None,
    ) -> PyTuple[bool, Optional[PyTuple[Any, Any]]]:
        """Union two symbol classes, keeping every index current.

        The rows holding a member of the absorbed class are marked
        dirty with the exact columns that changed; the occurrence and
        value indexes are rebucketed under the surviving root (whole
        absorbed buckets move at once — never row by row).  Returns
        ``(changed, conflict)`` exactly like :meth:`SymbolTable.merge`.

        When the merge log is enabled (:meth:`enable_merge_log`), pass
        the justifying provenance — the row pair that agreed on
        ``lhs_cols`` and forced the union in ``col`` — so the union can
        later be scoped by :meth:`retraction_impact`.  A provenance-less
        merge while the log is enabled marks the log incomplete and
        disables scoped retraction for good.
        """
        if self._occ_stale:
            self._rebuild_occ()
        changed, conflict, survivor, absorbed = self.symbols.merge_roots(a, b)
        if not changed:
            return False, conflict
        self._merge_count += 1
        if self._log_enabled:
            if row_a < 0:
                self._log_gap = True
            else:
                eid = self._next_event_id
                self._next_event_id = eid + 1
                # plain tuple, not a MergeEvent: this runs once per
                # union and dataclass construction is measurably hot;
                # merge_log() wraps entries for the public API
                self._merge_log[eid] = (row_a, row_b, col, a, b, lhs_cols, fd)
                by_row = self._events_by_row
                for r in (row_a, row_b):
                    lst = by_row.get(r)
                    if lst is None:
                        by_row[r] = [eid]
                    else:
                        lst.append(eid)
                # The rows agree on lhs_cols by construction, so one
                # registration per column covers both rows.  Columns
                # where the two rows hold the *same raw symbol* are
                # skipped: that agreement is identity (a shared
                # interned constant), owes nothing to the class's
                # unions, and can never be broken by a retraction —
                # registering it would drag every event of the shared
                # class into unrelated rows' taint footprints.
                by_root = self._events_by_root
                lhs_a = self._rows[row_a]
                lhs_b = self._rows[row_b]
                find = self.symbols.find
                for c in lhs_cols:
                    if lhs_a[c] == lhs_b[c]:
                        continue
                    root = find(lhs_a[c])
                    lst = by_root.get(root)
                    if lst is None:
                        by_root[root] = [eid]
                    else:
                        lst.append(eid)
                by_union = self._events_by_union
                lst = by_union.get(survivor)
                if lst is None:
                    by_union[survivor] = [eid]
                else:
                    lst.append(eid)
            # the absorbed class's dependants (and its unions' events)
            # now belong to the survivor
            for index in (self._events_by_root, self._events_by_union):
                moved_events = index.pop(absorbed, None)
                if moved_events:
                    existing = index.get(survivor)
                    if existing is None:
                        index[survivor] = moved_events
                    else:
                        existing.extend(moved_events)
        moved = self._occ.pop(absorbed, None)
        if moved:
            occ = self._occ
            bucket = occ.get(survivor)
            if bucket is None:
                occ[survivor] = moved
            else:
                bucket.extend(moved)
            ncols = len(self._cols)
            dirty = self._dirty
            attr_index = self._attr_index
            touched_cols: Set[int]
            if len(moved) == 1:
                r, c = divmod(moved[0], ncols)
                cols = dirty.get(r, _ABSENT)
                if cols is _ABSENT:
                    dirty[r] = {c}
                elif cols is not None:
                    cols.add(c)
                touched_cols = {c}
            else:
                touched_cols = set()
                for pos in moved:
                    r, c = divmod(pos, ncols)
                    cols = dirty.get(r, _ABSENT)
                    if cols is _ABSENT:
                        dirty[r] = {c}
                    elif cols is not None:
                        cols.add(c)
                    touched_cols.add(c)
            for c in touched_cols:
                col_index = attr_index.get(c)
                if col_index is None:
                    continue
                members = col_index.pop(absorbed, None)
                if members is None:
                    continue
                shared = self._shared[c]
                shared.discard(absorbed)
                existing = col_index.get(survivor)
                if existing is None:
                    col_index[survivor] = members
                    if len(members) >= 2:
                        shared.add(survivor)
                else:
                    existing.update(members)
                    if len(existing) >= 2:
                        shared.add(survivor)
        return True, None

    # -- deferred occurrence index ---------------------------------------------

    def _rebuild_occ(self) -> None:
        """One-pass reconstruction of the occurrence index (every row
        ever added, retracted included — dissolution must be able to
        enumerate a class's symbols).  The bulk paths defer occurrence
        maintenance and leave the index stale; the first reader lands
        here."""
        occ: Dict[int, List[int]] = {}
        find = self.symbols.find
        parent = self.symbols._uf._parent
        pos = 0
        for row in self._rows:
            for s in row:
                r = parent[s]
                if parent[r] != r:
                    r = find(s)
                bucket = occ.get(r)
                if bucket is None:
                    occ[r] = [pos]
                else:
                    bucket.append(pos)
                pos += 1
        self._occ = occ
        self._occ_stale = False

    # -- dirty worklist ---------------------------------------------------------

    def drain_dirty(self) -> Dict[int, Optional[Set[int]]]:
        """Return and clear the dirty worklist.

        The result maps row index to the set of columns whose symbol
        class changed since the last drain; ``None`` means "all
        columns" (freshly added rows).
        """
        out = self._dirty
        self._dirty = {}
        return out

    def dirty_count(self) -> int:
        return len(self._dirty)

    # -- bulk chase handoff ------------------------------------------------------

    @property
    def bulk_eligible(self) -> bool:
        """Can the column-major bulk kernel chase this tableau?

        Requires a *fresh* columnar tableau: no merges applied yet, no
        retracted slots, and every row built through the per-column
        symbol discipline (``add_padded`` / :meth:`bulk_ingest`) — the
        kernel's delta propagation relies on every symbol class living
        in exactly one column, which caller-supplied symbols
        (``seed_row``, direct ``add_row``) can violate.
        """
        return (
            self._merge_count == 0
            and not self._retracted
            and self._all_columnar
        )

    def install_bulk_chase(
        self, merges: int, events: Optional[List[PyTuple]] = None
    ) -> None:
        """Account a finished bulk-kernel run into the tableau.

        The kernel unions through the symbol table directly, so the
        per-merge index maintenance of :meth:`merge` never ran; this
        settles the books in one batch: the merge count (and with it
        :attr:`version`) absorbs the kernel's unions, the occurrence
        index is marked stale (rebuilt lazily by its next reader), any
        pre-materialized value indexes are dropped for lazy
        rematerialization, and the worklist is cleared — a bulk-chased
        tableau is at fixpoint by construction.

        ``events`` is the kernel's batch-recorded merge provenance
        (same entry shape as the live log).  Indexing it here, after
        the run, lands in the same state as logging during the run:
        the row/union/lhs-class indexes key events by *current* roots,
        and the taint walk only ever compares against current roots.
        Omitting ``events`` while the log is enabled marks the log
        incomplete, exactly like an unprovenanced live merge.
        """
        self._merge_count += merges
        self._resolved_cache = None
        self._occ_stale = True
        self._attr_index.clear()
        self._shared.clear()
        self._dirty.clear()
        if not self._log_enabled:
            return
        if events is None:
            if merges:
                self._log_gap = True
            return
        find = self.symbols.find
        log = self._merge_log
        by_row = self._events_by_row
        by_root = self._events_by_root
        by_union = self._events_by_union
        rows = self._rows
        eid = self._next_event_id
        for entry in events:
            row_a, row_b, _col, sym_a, _sym_b, lhs_cols, _fd = entry
            log[eid] = entry
            for r in (row_a, row_b):
                lst = by_row.get(r)
                if lst is None:
                    by_row[r] = [eid]
                else:
                    lst.append(eid)
            # identity lhs agreements are skipped for the same reason
            # the live path skips them: a shared raw symbol owes
            # nothing to any union and can never be broken
            lhs_a = rows[row_a]
            lhs_b = rows[row_b]
            for c in lhs_cols:
                if lhs_a[c] == lhs_b[c]:
                    continue
                root = find(lhs_a[c])
                lst = by_root.get(root)
                if lst is None:
                    by_root[root] = [eid]
                else:
                    lst.append(eid)
            root = find(sym_a)
            lst = by_union.get(root)
            if lst is None:
                by_union[root] = [eid]
            else:
                lst.append(eid)
            eid += 1
        self._next_event_id = eid

    # -- merge log & retraction --------------------------------------------------

    def enable_merge_log(self) -> None:
        """Start recording merge provenance (scoped retraction needs it).

        Must be called before any merge; enabling after merges have
        already happened leaves a permanent gap and the log stays
        incomplete.  :class:`~repro.chase.engine.IncrementalFDChaser`
        enables the log on construction, so every service tableau is
        retractable from the start.  Re-enabling an already-enabled log
        is a no-op (the bulk→incremental handoff constructs a driver
        over a tableau whose log the bulk kernel already populated).
        """
        if self._merge_count and not self._log_enabled:
            self._log_gap = True
        self._log_enabled = True

    @property
    def merge_log_enabled(self) -> bool:
        """Is merge provenance being recorded?  (The auto bulk routing
        consults this: a kernel run over a log-enabled tableau must
        batch-record events, or the log would gap and scoped retraction
        would be lost.)"""
        return self._log_enabled

    @property
    def merge_log_complete(self) -> bool:
        """Can :meth:`retraction_impact` scope this tableau?  Requires
        logging enabled before the first merge, provenance on every
        merge since, and no seed/JD rows."""
        return self._log_enabled and not self._log_gap and not self._derived_rows

    def merge_log(self) -> List[MergeEvent]:
        """The live merge events in firing order (pruned events gone)."""
        return [MergeEvent(*entry) for entry in self._merge_log.values()]

    def is_retracted(self, i: int) -> bool:
        return i in self._retracted

    def live_row_count(self) -> int:
        """Rows that still contribute to projections (total minus
        retracted)."""
        return len(self._rows) - len(self._retracted)

    def retraction_impact(self, i: int) -> RetractionImpact:
        """The footprint of retracting row ``i`` — computed, not applied.

        Walks the merge log outward from the row's own merge events:
        an event is *tainted* when the row participated in it or when
        the class its left-hand-side agreement lives in is tainted
        (the union that justified the agreement is being undone), and
        a tainted event taints the class its union built.  Comparing
        against **current** roots over-approximates the true derivation
        (classes only grow between retractions, so any class a tainted
        merge fed into is reached) — sound, and exactly the DRed
        delete-and-rederive over-estimate.  Cost is proportional to
        the tainted footprint, not the tableau.
        """
        if i in self._retracted:
            raise InstanceError(f"row {i} is already retracted")
        if self._occ_stale:
            self._rebuild_occ()
        resolve = self.symbols.resolve_value
        resolved_values = tuple(resolve(s) for s in self._rows[i])
        if not self.merge_log_complete:
            impact = RetractionImpact(row=i, complete=False)
            impact.resolved_values = resolved_values
            impact.affected_rows = {
                r for r in range(len(self._rows))
                if r != i and r not in self._retracted
            }
            impact.changed_cols = set(range(len(self._cols)))
            return impact
        find = self.symbols.find
        log = self._merge_log
        tainted_roots: Set[int] = set()
        tainted_events: Set[int] = set()
        seeds = self._events_by_row.get(i)
        worklist: List[int] = []
        if seeds:
            # compact the stale ids of previously pruned events away
            live = [eid for eid in seeds if eid in log]
            self._events_by_row[i] = live
            worklist.extend(live)
        while worklist:
            eid = worklist.pop()
            if eid in tainted_events:
                continue
            tainted_events.add(eid)
            root = find(log[eid][3])  # entry[3] = sym_a
            if root in tainted_roots:
                continue
            tainted_roots.add(root)
            dependants = self._events_by_root.get(root)
            if dependants:
                worklist.extend(e for e in dependants if e in log)
        # Affected rows: every live holder of a tainted class.  Rows
        # that only touch the class through its interned constant keep
        # their resolution (identity survives dissolution), but they
        # still must be re-seeded: an undone union can pair a constant
        # holder with the *retracted* row's variable, and under a
        # multi-attribute lhs the bucket path has no class sweep to
        # re-link the constant holder through — only its own dirty
        # processing re-derives the union.  Changed columns are
        # tighter: only variable positions can change resolution, so
        # only they can invalidate a cached window.
        affected_rows: Set[int] = set()
        changed_cols: Set[int] = set()
        ncols = len(self._cols)
        retracted = self._retracted
        rows = self._rows
        is_interned = self.symbols.is_interned
        for root in tainted_roots:
            for pos in self._occ.get(root, ()):
                r, c = divmod(pos, ncols)
                if r == i or r in retracted:
                    continue
                affected_rows.add(r)
                if not is_interned(rows[r][c]):
                    changed_cols.add(c)
        return RetractionImpact(
            row=i,
            complete=True,
            tainted_roots=tainted_roots,
            tainted_events=tainted_events,
            affected_rows=affected_rows,
            changed_cols=changed_cols,
            resolved_values=resolved_values,
        )

    def retract_row(self, i: int, impact: Optional[RetractionImpact] = None) -> RetractionImpact:
        """Remove row ``i`` and undo exactly its merge footprint.

        Every tainted class is dissolved back to its original interned
        symbols, the occurrence and value indexes are rebucketed for
        just those classes, the tainted merge events are pruned from
        the log, and the affected rows are seeded into the dirty
        worklist (all columns — the unions being undone may need
        re-deriving under FDs whose *right*-hand side mentions the
        dissolved column, which the changed-column filter would skip).
        The caller must then drive the FD fixpoint
        (:meth:`~repro.chase.engine.IncrementalFDChaser.rechase_scoped`)
        to re-derive the unions still justified by the surviving rows.
        """
        if self._occ_stale:
            self._rebuild_occ()
        if impact is None:
            impact = self.retraction_impact(i)
        if not impact.complete:
            raise InstanceError(
                "cannot scope the retraction: the merge log is incomplete "
                "(enable_merge_log before the first merge, provenance on "
                "every merge, state rows only) — rebuild the tableau instead"
            )
        find = self.symbols.find
        log = self._merge_log
        rows = self._rows
        ncols = len(self._cols)
        occ = self._occ
        attr_index = self._attr_index
        shared = self._shared
        retracted = self._retracted
        # 1. prune the undone derivation (uses pre-dissolution roots).
        # Every event whose *union* lives in a dissolved class goes —
        # not just the tainted ones: an untainted event co-dissolved
        # with its class gets re-derived and re-logged by the rechase,
        # and leaving the old entry behind would duplicate it on every
        # delete/re-insert cycle (an unbounded log on a bounded state).
        pruned_rows: Set[int] = set()
        pruned = 0
        for root in impact.tainted_roots:
            for eid in self._events_by_union.pop(root, ()):
                entry = log.pop(eid, None)
                if entry is not None:
                    pruned += 1
                    pruned_rows.add(entry[0])
                    pruned_rows.add(entry[1])
        for eid in impact.tainted_events:
            entry = log.pop(eid, None)
            if entry is not None:
                pruned += 1
                pruned_rows.add(entry[0])
                pruned_rows.add(entry[1])
        self._events_by_row.pop(i, None)
        pruned_rows.discard(i)
        # compact the pruned ids out of the row-keyed lists right away:
        # rows that are never retracted would otherwise accumulate
        # stale ids across delete/re-insert cycles forever
        by_row = self._events_by_row
        for r in pruned_rows:
            lst = by_row.get(r)
            if lst is not None:
                live = [eid for eid in lst if eid in log]
                if live:
                    by_row[r] = live
                else:
                    del by_row[r]
        # the lhs-dependency lists can hold pruned ids under roots this
        # retraction never visited; sweep them (amortized) once the
        # stale mass rivals the live log, so long delete streams on a
        # bounded state keep a bounded index
        self._events_stale += pruned
        if self._events_stale > max(64, len(log)):
            by_root = self._events_by_root
            for root in list(by_root):
                live = [eid for eid in by_root[root] if eid in log]
                if live:
                    by_root[root] = live
                else:
                    del by_root[root]
            self._events_stale = 0
        # 2. dissolve each tainted class and rebucket its footprint
        for root in impact.tainted_roots:
            positions = occ.pop(root, None) or []
            members = {rows[pos // ncols][pos % ncols] for pos in positions}
            self.symbols.dissolve(root, members)
            self._events_by_root.pop(root, None)
            col_buckets: Dict[int, Dict[int, Set[int]]] = {}
            touched_cols: Set[int] = set()
            for pos in positions:
                r, c = divmod(pos, ncols)
                s = rows[r][c]  # now its own singleton root
                bucket = occ.get(s)
                if bucket is None:
                    occ[s] = [pos]
                else:
                    bucket.append(pos)
                if c in attr_index:
                    touched_cols.add(c)
                    if r != i and r not in retracted:
                        col_buckets.setdefault(c, {}).setdefault(s, set()).add(r)
            for c in touched_cols:
                col_index = attr_index[c]
                col_index.pop(root, None)
                col_shared = shared[c]
                col_shared.discard(root)
                for s, members_rows in col_buckets.get(c, {}).items():
                    col_index[s] = members_rows
                    if len(members_rows) >= 2:
                        col_shared.add(s)
        # 3. drop the retracted row from the untainted value-index buckets
        row_i = rows[i]
        for c, col_index in attr_index.items():
            root = find(row_i[c])
            members_rows = col_index.get(root)
            if members_rows is not None and i in members_rows:
                members_rows.discard(i)
                if not members_rows:
                    del col_index[root]
                    shared[c].discard(root)
                elif len(members_rows) < 2:
                    shared[c].discard(root)
        # 4. mark retracted, reseed the worklist, stamp a new version
        retracted.add(i)
        dirty = self._dirty
        dirty.pop(i, None)
        for r in impact.affected_rows:
            dirty[r] = None
        self._merge_count += 1
        self._resolved_cache = None
        return impact

    # -- access ------------------------------------------------------------------

    @property
    def columns(self) -> PyTuple[str, ...]:
        return self._cols

    def column_index(self, attr: str) -> int:
        return self._colidx[attr]

    @property
    def version(self) -> PyTuple[int, int]:
        """``(rows, merges)`` — changes iff the tableau changed.  Used
        as the key of every memoized derived structure.  Both
        components carry the base installed by
        :meth:`offset_version_base`, so a rebuilt tableau's stamps
        continue strictly after its predecessor's.
        """
        base = self._version_base
        return (len(self._rows) + base[0], self._merge_count + base[1])

    def offset_version_base(self, floor: PyTuple[int, int]) -> None:
        """Make every future :attr:`version` strictly greater than
        ``floor`` (a predecessor tableau's last observed version).

        Services rebuild their live tableau from scratch on
        invalidation; without a carried base the fresh tableau's
        ``(rows, merges)`` counters restart and can coincidentally
        reproduce a stamp the superseded tableau already handed to a
        version-keyed cache — which would let the cache serve a
        pre-rebuild entry as current.  Call it before the tableau's
        stamps are given out; only double installation is detected
        (stamps issued pre-base stay below every post-base stamp, so a
        late install keeps monotonicity but reshuffles history).
        """
        if self._version_base != (0, 0):
            raise InstanceError("version base already installed")
        # rows + floor[0] keeps the row component non-decreasing; the
        # +1 on the merge component makes the very first stamp strictly
        # greater than the floor even for an empty successor
        self._version_base = (floor[0], floor[1] + 1)

    def __len__(self) -> int:
        return len(self._rows)

    def raw_row(self, i: int) -> PyTuple[int, ...]:
        return self._rows[i]

    def origin(self, i: int) -> RowOrigin:
        return self._origins[i]

    def resolved_row(self, i: int) -> PyTuple[int, ...]:
        """The row with every symbol replaced by its class root."""
        find = self.symbols.find
        return tuple(find(s) for s in self._rows[i])

    def resolved_rows(self) -> List[PyTuple[int, ...]]:
        """All rows resolved to class roots, memoized per :attr:`version`."""
        v = self.version
        cached = self._resolved_cache
        if cached is not None and cached[0] == v:
            return cached[1]
        find = self.symbols.find
        rows = [tuple(find(s) for s in row) for row in self._rows]
        self._resolved_cache = (v, rows)
        return rows

    def symbol_at(self, i: int, attr: str) -> int:
        return self.symbols.find(self._rows[i][self._colidx[attr]])

    # -- value index --------------------------------------------------------------

    def value_index(self, attr: str) -> Dict[int, Set[int]]:
        """The partition of rows by their symbol class in ``attr``.

        Materialized on first use for the column and maintained
        incrementally by :meth:`merge`/:meth:`add_row` from then on:
        the FD-rule reads it on every pass, so it must never be
        rebuilt from scratch once built.
        """
        c = self._colidx[attr]
        col_index = self._attr_index.get(c)
        if col_index is None:
            self.materialize_value_indexes([attr])
            col_index = self._attr_index[c]
        return col_index

    def materialize_value_indexes(self, attr_list: Iterable[str]) -> None:
        """Build the value indexes for several columns in one row scan
        (the FD-rule index wants one per distinct lhs attribute).
        Retracted rows are excluded — the value indexes partition the
        *live* rows only."""
        targets = [
            (c, {})
            for c in {self._colidx[a] for a in attr_list}
            if c not in self._attr_index
        ]
        if not targets:
            return
        find = self.symbols.find
        retracted = self._retracted
        for i, row in enumerate(self._rows):
            if i in retracted:
                continue
            for c, col_index in targets:
                root = find(row[c])
                members = col_index.get(root)
                if members is None:
                    col_index[root] = {i}
                else:
                    members.add(i)
        for c, col_index in targets:
            self._attr_index[c] = col_index
            self._shared[c] = {
                root for root, members in col_index.items() if len(members) >= 2
            }

    def shared_classes(self, attr: str) -> Set[int]:
        """The symbol classes held by ≥2 rows in ``attr`` — the only
        candidates for an FD-rule firing on that column (materializes
        the column's value index on first use)."""
        c = self._colidx[attr]
        if c not in self._attr_index:
            self.materialize_value_indexes([attr])
        return self._shared[c]

    def live_row_matching(
        self, cols: Sequence[int], roots: Sequence[int]
    ) -> Optional[int]:
        """A live row whose resolved symbols at ``cols`` are exactly
        ``roots``, or ``None``.

        The window-cache revalidation of the weak-instance service uses
        this after a scoped retraction: the retracted row's projection
        survives in a cached window iff some live row still produces
        the same facts.  Cost is one scan of the first root's
        occurrence bucket (a class, not the tableau).

        Empty ``cols`` means no constraint: every live row matches (the
        empty projection is ``{()}`` exactly while a live row exists).
        """
        if not cols:
            retracted = self._retracted
            for r in range(len(self._rows)):
                if r not in retracted:
                    return r
            return None
        if self._occ_stale:
            self._rebuild_occ()
        c0 = cols[0]
        find = self.symbols.find
        rows = self._rows
        ncols = len(self._cols)
        retracted = self._retracted
        rest = list(zip(cols[1:], roots[1:]))
        for pos in self._occ.get(roots[0], ()):
            r, c = divmod(pos, ncols)
            if c != c0 or r in retracted:
                continue
            row = rows[r]
            if all(find(row[ck]) == rk for ck, rk in rest):
                return r
        return None

    def check_index_invariants(self) -> None:
        """Verify every index against a from-scratch recomputation
        (test hook; O(rows × columns)).

        The occurrence index covers *every* row ever added (retracted
        rows included — dissolution needs their symbols); the value
        indexes cover live rows only.  When the merge log is in use,
        every surviving event must still be justified: both rows live,
        the union applied, and the left-hand-side agreement intact.
        """
        if self._occ_stale:
            self._rebuild_occ()
        find = self.symbols.find
        ncols = len(self._cols)
        expected_occ: Dict[int, Set[int]] = {}
        for i, row in enumerate(self._rows):
            for c, sym in enumerate(row):
                expected_occ.setdefault(find(sym), set()).add(i * ncols + c)
        actual = {root: set(ps) for root, ps in self._occ.items() if ps}
        assert actual == expected_occ, "occurrence index out of sync"
        retracted = self._retracted
        for c, col_index in self._attr_index.items():
            expected: Dict[int, Set[int]] = {}
            for i, row in enumerate(self._rows):
                if i in retracted:
                    continue
                expected.setdefault(find(row[c]), set()).add(i)
            assert col_index == expected, f"value index for column {c} out of sync"
            expected_shared = {
                root for root, members in expected.items() if len(members) >= 2
            }
            assert self._shared[c] == expected_shared, (
                f"shared-class set for column {c} out of sync"
            )
        for eid, entry in self._merge_log.items():
            row_a, row_b, _, sym_a, sym_b, lhs_cols, _ = entry
            assert row_a not in retracted and row_b not in retracted, (
                f"merge event {eid} references a retracted row"
            )
            assert find(sym_a) == find(sym_b), (
                f"merge event {eid} survives but its union was undone"
            )
            ra, rb = self._rows[row_a], self._rows[row_b]
            for c in lhs_cols:
                assert find(ra[c]) == find(rb[c]), (
                    f"merge event {eid} survives but its lhs agreement broke"
                )

    # -- extraction -----------------------------------------------------------------

    def to_relation(self) -> RelationInstance:
        """Materialize as a relation over ``U`` (variables → labelled
        nulls) — the weak instance when the chase succeeded."""
        resolve = self.symbols.resolve_value
        retracted = self._retracted
        rows = []
        for i, row in enumerate(self._rows):
            if i in retracted:
                continue
            rows.append(tuple(resolve(s) for s in row))
        return RelationInstance(self.universe, rows)

    def total_projection(self, attrset: AttrsLike) -> RelationInstance:
        """Rows whose ``X``-values are all constants, projected on ``X``
        (the weak-instance query answer of [S1]/[M]).

        The result is a set: distinct rows only, even when many tableau
        rows resolve to the same constants (``RelationInstance`` would
        dedupe anyway — dropping duplicates here skips building the
        redundant tuples, which matters once a chased tableau has many
        rows grounded to the same facts).
        """
        target = AttributeSet(attrset)
        idxs = [self._colidx[a] for a in target]
        resolve = self.symbols.resolve_value
        retracted = self._retracted
        rows = []
        seen: Set[PyTuple[Any, ...]] = set()
        for i, row in enumerate(self._rows):
            if i in retracted:
                continue
            vals = tuple(resolve(row[i2]) for i2 in idxs)
            if vals not in seen and all(not is_null(v) for v in vals):
                seen.add(vals)
                rows.append(vals)
        return RelationInstance(target, rows)

    def total_projection_matching(
        self,
        attrset: AttrsLike,
        bindings: Sequence[PyTuple[str, Any]],
    ) -> RelationInstance:
        """:meth:`total_projection` restricted to rows whose bound
        attributes resolve to the given constants — answered from the
        per-attribute value indexes instead of a full row scan.

        Each ``(attr, value)`` binding becomes one bucket lookup:
        constants are interned per column namespace and FD merges only
        ever equate symbols within a column, so a value the column's
        intern table has never seen cannot appear in any row — the
        answer is empty without touching a row.  Otherwise the buckets
        intersect to the candidate set, which is then projected like
        :meth:`total_projection` (dedupe + all-constants check).
        """
        target = AttributeSet(attrset)
        if not bindings:
            return self.total_projection(target)
        symbols = self.symbols
        find = symbols.find
        candidates: Optional[Set[int]] = None
        for attr, value in bindings:
            sym = symbols.interned_symbol(value, attr)
            if sym is None:
                return RelationInstance(target)
            bucket = self.value_index(attr).get(find(sym))
            if not bucket:
                return RelationInstance(target)
            candidates = (
                set(bucket) if candidates is None else candidates & bucket
            )
            if not candidates:
                return RelationInstance(target)
        idxs = [self._colidx[a] for a in target]
        bound = [(self._colidx[a], v) for a, v in bindings]
        resolve = symbols.resolve_value
        retracted = self._retracted
        rows = []
        seen: Set[PyTuple[Any, ...]] = set()
        assert candidates is not None
        for i in sorted(candidates):
            if i in retracted:
                continue
            row = self._rows[i]
            # re-check the bound columns against the index verdict (a
            # stale bucket must narrow, never widen, the answer)
            if any(resolve(row[c]) != v for c, v in bound):
                continue
            vals = tuple(resolve(row[i2]) for i2 in idxs)
            if vals not in seen and all(not is_null(v) for v in vals):
                seen.add(vals)
                rows.append(vals)
        return RelationInstance(target, rows)

    def pretty(self, max_rows: int = 30) -> str:
        resolve = self.symbols.resolve_value
        header = " | ".join(f"{c:>8}" for c in self._cols)
        lines = [header, "-" * len(header)]
        shown = 0
        for i, row in enumerate(self._rows):
            if i in self._retracted:
                continue
            if shown >= max_rows:
                break
            shown += 1
            lines.append(" | ".join(f"{str(resolve(s)):>8}" for s in row))
        live = self.live_row_count()
        if live > max_rows:
            lines.append(f"… ({live} rows)")
        return "\n".join(lines)


class BulkIngest:
    """Column-major batch construction of a fresh :class:`ChaseTableau`.

    ``add_padded`` only buffers values (one list per column);
    :meth:`finish` materializes everything in per-column passes:
    constants interned straight into the symbol table's per-column
    intern map, padding variables allocated inline, and the row tuples
    produced by one ``zip`` transpose.  None of ``add_row``'s per-cell
    occurrence bookkeeping runs — the occurrence index is left stale
    and rebuilt lazily by its first reader — which is what makes cold
    tableau construction cheap enough for the bulk chase kernel's
    from-scratch paths.

    The result is observationally identical to the same sequence of
    ``ChaseTableau.add_padded`` calls: same symbols (up to allocation
    order), same interning (per column), same dirty worklist, same
    origins.  Only usable on a pristine tableau, and only once.
    """

    __slots__ = ("_tableau", "_buffers", "_origins", "_plans", "_done")

    def __init__(self, tableau: ChaseTableau):
        if len(tableau) or tableau._merge_count:
            raise InstanceError("bulk ingest requires a pristine tableau")
        self._tableau = tableau
        self._buffers: List[List[Any]] = [[] for _ in tableau._cols]
        self._origins: List[RowOrigin] = []
        # attrset -> ((column buffer, attr-or-None), ...): which buffer
        # receives which attribute (None = pad with a fresh variable),
        # computed once per distinct sub-scheme instead of per tuple
        self._plans: Dict[AttributeSet, PyTuple] = {}
        self._done = False

    def __len__(self) -> int:
        return len(self._origins)

    def add_padded(self, attrset: AttributeSet, t: Tuple, origin: RowOrigin) -> int:
        """Buffer one tuple over a sub-scheme; returns its future row
        index.  The same ``origin`` instance may be (and for large
        loads should be) shared across rows."""
        plan = self._plans.get(attrset)
        if plan is None:
            plan = tuple(
                (self._buffers[c], a if a in attrset else None)
                for c, a in enumerate(self._tableau._cols)
            )
            self._plans[attrset] = plan
        i = len(self._origins)
        self._origins.append(origin)
        for buf, a in plan:
            buf.append(t.value(a) if a is not None else _ABSENT)
        return i

    def finish(self) -> ChaseTableau:
        """Materialize the buffered rows into the tableau."""
        if self._done:
            raise InstanceError("bulk ingest already finished")
        self._done = True
        tab = self._tableau
        if len(tab):
            raise InstanceError(
                "rows were added to the tableau behind the ingest's back"
            )
        symbols = tab.symbols
        uf = symbols._uf
        parent = uf._parent
        size = uf._size
        by_value = symbols._by_value
        const = symbols._const
        interned = symbols._interned
        n = len(self._origins)
        col_syms: List[List[int]] = []
        for name, buf in zip(tab._cols, self._buffers):
            out: List[int] = []
            append = out.append
            for v in buf:
                if v is _ABSENT:
                    s = len(parent)
                    parent.append(s)
                    size.append(1)
                else:
                    key = (name, v)
                    try:
                        s = by_value.get(key, _ABSENT)
                    except TypeError:
                        raise InstanceError(
                            f"unhashable constant {v!r}"
                        ) from None
                    if s is _ABSENT:
                        if is_null(v):
                            raise InstanceError(
                                "labelled nulls cannot enter a tableau as "
                                "constants; use fresh variables instead"
                            )
                        s = len(parent)
                        parent.append(s)
                        size.append(1)
                        by_value[key] = s
                        const[s] = v
                        interned[s] = v
                append(s)
            col_syms.append(out)
        tab._rows = list(zip(*col_syms)) if n else []
        tab._origins = self._origins
        tab._derived_rows += sum(
            1 for o in self._origins if o is None or o.kind != "state"
        )
        tab._dirty = dict.fromkeys(range(n))
        tab._occ_stale = True
        return tab
