"""Chase tableaux.

A :class:`ChaseTableau` is the universal relation ``I(p)`` of Section 2:
one row per stored tuple, padded out to the universe ``U`` with fresh
variables.  Symbols (constants and variables) are interned integers
managed by a union-find, so the FD-rule's "replace all occurrences"
is a single union operation.

The tableau is the shared substrate of every chase in the library:
satisfaction testing (Section 2), FD implication under ``F ∪ {*D}``
(Section 3, two-row tableaux), the lossless-join test of [ABU], and
weak-instance materialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.data.relations import RelationInstance
from repro.data.states import DatabaseState
from repro.data.tuples import Tuple
from repro.data.values import Null, is_null
from repro.exceptions import InstanceError
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.util.unionfind import UnionFind

_CONST_SENTINEL = object()


class SymbolTable:
    """Interned symbols with union-find merging.

    Every symbol is an ``int``.  A symbol is a *constant* when it has an
    associated value, otherwise a *variable* (the paper's ndv/dv).
    Merging two constants with different values is a *contradiction*;
    merging a constant with a variable promotes the class to constant.
    """

    __slots__ = ("_uf", "_const", "_by_value", "_next")

    def __init__(self) -> None:
        self._uf = UnionFind()
        self._const: Dict[int, Any] = {}
        self._by_value: Dict[Any, int] = {}
        self._next = 0

    def fresh_variable(self) -> int:
        sym = self._next
        self._next += 1
        self._uf.add(sym)
        return sym

    def constant(self, value: Any) -> int:
        """The unique symbol for a constant value (interned)."""
        if is_null(value):
            raise InstanceError(
                "labelled nulls cannot enter a tableau as constants; "
                "use fresh variables instead"
            )
        try:
            return self._by_value[value]
        except KeyError:
            pass
        except TypeError:
            raise InstanceError(f"unhashable constant {value!r}") from None
        sym = self.fresh_variable()
        self._const[sym] = value
        self._by_value[value] = sym
        return sym

    def find(self, sym: int) -> int:
        return self._uf.find(sym)

    def value_of(self, sym: int) -> Any:
        """The constant value of the symbol's class, or ``_CONST_SENTINEL``."""
        return self._const.get(self.find(sym), _CONST_SENTINEL)

    def is_constant(self, sym: int) -> bool:
        return self.find(sym) in self._const

    def merge(self, a: int, b: int) -> PyTuple[bool, Optional[PyTuple[Any, Any]]]:
        """Union the classes of ``a`` and ``b``.

        Returns ``(changed, conflict)``: ``conflict`` is the pair of
        distinct constant values when both classes were constants —
        the chase's contradiction.
        """
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return False, None
        ca = self._const.get(ra, _CONST_SENTINEL)
        cb = self._const.get(rb, _CONST_SENTINEL)
        if ca is not _CONST_SENTINEL and cb is not _CONST_SENTINEL:
            if ca != cb:
                return False, (ca, cb)
        root = self._uf.union(ra, rb)
        winner = ca if ca is not _CONST_SENTINEL else cb
        if winner is not _CONST_SENTINEL:
            self._const.pop(ra, None)
            self._const.pop(rb, None)
            self._const[root] = winner
        return True, None

    def resolve_value(self, sym: int) -> Any:
        """Constant value, or a :class:`Null` labelled by the class root."""
        root = self.find(sym)
        val = self._const.get(root, _CONST_SENTINEL)
        if val is _CONST_SENTINEL:
            return Null(root)
        return val


@dataclass(frozen=True)
class RowOrigin:
    """Provenance of a tableau row (for traces and counterexamples)."""

    kind: str  # "state", "seed", "jd"
    scheme: Optional[str] = None
    detail: str = ""


class ChaseTableau:
    """Rows of interned symbols over a fixed universe."""

    __slots__ = ("universe", "_cols", "_colidx", "symbols", "_rows", "_origins")

    def __init__(self, universe: AttrsLike):
        uni = AttributeSet(universe)
        if not uni:
            raise InstanceError("a tableau needs a non-empty universe")
        self.universe = uni
        self._cols: PyTuple[str, ...] = uni.names
        self._colidx = {a: i for i, a in enumerate(self._cols)}
        self.symbols = SymbolTable()
        self._rows: List[PyTuple[int, ...]] = []
        self._origins: List[RowOrigin] = []

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_state(cls, state: DatabaseState) -> "ChaseTableau":
        """``I(p)``: pad every stored tuple to ``U`` with fresh variables."""
        tab = cls(state.schema.universe)
        for scheme, relation in state:
            for t in relation:
                tab.add_padded(scheme.attributes, t, RowOrigin("state", scheme.name))
        return tab

    @classmethod
    def from_relation(cls, universe: AttrsLike, relation: RelationInstance,
                      scheme_name: str = "r") -> "ChaseTableau":
        tab = cls(universe)
        for t in relation:
            tab.add_padded(relation.attributes, t, RowOrigin("state", scheme_name))
        return tab

    def add_padded(self, attrset: AttributeSet, t: Tuple, origin: RowOrigin) -> int:
        """Add a tuple over a sub-scheme, padded with fresh variables."""
        row = []
        for a in self._cols:
            if a in attrset:
                row.append(self.symbols.constant(t.value(a)))
            else:
                row.append(self.symbols.fresh_variable())
        return self.add_row(tuple(row), origin)

    def add_row(self, syms: PyTuple[int, ...], origin: RowOrigin) -> int:
        if len(syms) != len(self._cols):
            raise InstanceError("row arity does not match the universe")
        self._rows.append(syms)
        self._origins.append(origin)
        return len(self._rows) - 1

    def seed_row(self, shared: Dict[str, int], origin: RowOrigin) -> int:
        """Add a row with given symbols in some columns, fresh elsewhere
        (used by implication tableaux)."""
        row = []
        for a in self._cols:
            row.append(shared.get(a, self.symbols.fresh_variable()))
        return self.add_row(tuple(row), origin)

    # -- access ------------------------------------------------------------------

    @property
    def columns(self) -> PyTuple[str, ...]:
        return self._cols

    def column_index(self, attr: str) -> int:
        return self._colidx[attr]

    def __len__(self) -> int:
        return len(self._rows)

    def raw_row(self, i: int) -> PyTuple[int, ...]:
        return self._rows[i]

    def origin(self, i: int) -> RowOrigin:
        return self._origins[i]

    def resolved_row(self, i: int) -> PyTuple[int, ...]:
        """The row with every symbol replaced by its class root."""
        find = self.symbols.find
        return tuple(find(s) for s in self._rows[i])

    def resolved_rows(self) -> List[PyTuple[int, ...]]:
        find = self.symbols.find
        return [tuple(find(s) for s in row) for row in self._rows]

    def symbol_at(self, i: int, attr: str) -> int:
        return self.symbols.find(self._rows[i][self._colidx[attr]])

    # -- extraction -----------------------------------------------------------------

    def to_relation(self) -> RelationInstance:
        """Materialize as a relation over ``U`` (variables → labelled
        nulls) — the weak instance when the chase succeeded."""
        resolve = self.symbols.resolve_value
        rows = []
        for row in self._rows:
            rows.append(tuple(resolve(s) for s in row))
        return RelationInstance(self.universe, rows)

    def total_projection(self, attrset: AttrsLike) -> RelationInstance:
        """Rows whose ``X``-values are all constants, projected on ``X``
        (the weak-instance query answer of [S1]/[M])."""
        target = AttributeSet(attrset)
        idxs = [self._colidx[a] for a in target]
        resolve = self.symbols.resolve_value
        rows = []
        for row in self._rows:
            vals = tuple(resolve(row[i]) for i in idxs)
            if all(not is_null(v) for v in vals):
                rows.append(vals)
        return RelationInstance(target, rows)

    def pretty(self, max_rows: int = 30) -> str:
        resolve = self.symbols.resolve_value
        header = " | ".join(f"{c:>8}" for c in self._cols)
        lines = [header, "-" * len(header)]
        for i, row in enumerate(self._rows[:max_rows]):
            lines.append(" | ".join(f"{str(resolve(s)):>8}" for s in row))
        if len(self._rows) > max_rows:
            lines.append(f"… ({len(self._rows)} rows)")
        return "\n".join(lines)
