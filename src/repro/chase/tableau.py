"""Chase tableaux with persistent incremental indexes.

A :class:`ChaseTableau` is the universal relation ``I(p)`` of Section 2:
one row per stored tuple, padded out to the universe ``U`` with fresh
variables.  Symbols (constants and variables) are interned integers
managed by a union-find, so the FD-rule's "replace all occurrences"
is a single union operation.

Beyond the rows themselves, the tableau maintains the index structures
the incremental chase engine (:mod:`repro.chase.engine`) is built on:

* an **occurrence index** mapping each symbol class root to the set of
  ``(row, column)`` positions holding a member of that class, so a
  merge knows exactly which rows it touched;
* a **dirty-row worklist**: every row changed since the last
  :meth:`drain_dirty` call, together with the columns that changed, so
  a chase fixpoint pass revisits only rows whose symbols moved;
* a lazily materialized **per-attribute value index**
  (:meth:`value_index`): for a column, the partition of rows by their
  current symbol class — the FD-rule's row-pair lookup for
  single-attribute left-hand sides;
* a **version stamp** (:attr:`version`) bumped on every row addition
  and merge, keying memoized derived data such as
  :meth:`resolved_rows` and the engine's projection caches.

All indexes are maintained through :meth:`ChaseTableau.merge`; calling
``tableau.symbols.merge`` directly still works but bypasses index
maintenance, so only do that on tableaux you will not chase afterwards
(the naive reference engine in :mod:`repro.chase.reference` does this
deliberately, to preserve the un-indexed baseline).

The tableau is the shared substrate of every chase in the library:
satisfaction testing (Section 2), FD implication under ``F ∪ {*D}``
(Section 3, two-row tableaux), the lossless-join test of [ABU], and
weak-instance materialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.data.relations import RelationInstance
from repro.data.states import DatabaseState
from repro.data.tuples import Tuple
from repro.data.values import Null, is_null
from repro.exceptions import InstanceError
from repro.schema.attributes import AttributeSet, AttrsLike
from repro.util.unionfind import IntUnionFind

_CONST_SENTINEL = object()
_ABSENT = object()


class SymbolTable:
    """Interned symbols with union-find merging.

    Every symbol is an ``int``.  A symbol is a *constant* when it has an
    associated value, otherwise a *variable* (the paper's ndv/dv).
    Merging two constants with different values is a *contradiction*;
    merging a constant with a variable promotes the class to constant.
    """

    __slots__ = ("_uf", "_const", "_by_value", "find")

    def __init__(self) -> None:
        self._uf = IntUnionFind()
        self._const: Dict[int, Any] = {}
        self._by_value: Dict[Any, int] = {}
        # bound method, so hot loops resolve symbols without an extra
        # attribute hop (`find = tableau.symbols.find` is pervasive)
        self.find = self._uf.find

    def fresh_variable(self) -> int:
        return self._uf.add_next()

    def constant(self, value: Any) -> int:
        """The unique symbol for a constant value (interned)."""
        if is_null(value):
            raise InstanceError(
                "labelled nulls cannot enter a tableau as constants; "
                "use fresh variables instead"
            )
        try:
            return self._by_value[value]
        except KeyError:
            pass
        except TypeError:
            raise InstanceError(f"unhashable constant {value!r}") from None
        sym = self.fresh_variable()
        self._const[sym] = value
        self._by_value[value] = sym
        return sym

    def value_of(self, sym: int) -> Any:
        """The constant value of the symbol's class, or ``_CONST_SENTINEL``."""
        return self._const.get(self.find(sym), _CONST_SENTINEL)

    def is_constant(self, sym: int) -> bool:
        return self.find(sym) in self._const

    def merge(self, a: int, b: int) -> PyTuple[bool, Optional[PyTuple[Any, Any]]]:
        """Union the classes of ``a`` and ``b``.

        Returns ``(changed, conflict)``: ``conflict`` is the pair of
        distinct constant values when both classes were constants —
        the chase's contradiction.
        """
        changed, conflict, _, _ = self.merge_roots(a, b)
        return changed, conflict

    def merge_roots(
        self, a: int, b: int
    ) -> PyTuple[bool, Optional[PyTuple[Any, Any]], int, int]:
        """Union with full merge provenance.

        Returns ``(changed, conflict, survivor, absorbed)``: the class
        root that survived the union and the root whose class was
        folded into it.  Index maintenance
        (:meth:`ChaseTableau.merge`) needs the absorbed root to know
        which positions changed class.
        """
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return False, None, ra, ra
        ca = self._const.get(ra, _CONST_SENTINEL)
        cb = self._const.get(rb, _CONST_SENTINEL)
        if ca is not _CONST_SENTINEL and cb is not _CONST_SENTINEL:
            if ca != cb:
                return False, (ca, cb), ra, rb
        root = self._uf.union(ra, rb)
        absorbed = rb if root == ra else ra
        winner = ca if ca is not _CONST_SENTINEL else cb
        if winner is not _CONST_SENTINEL:
            self._const.pop(ra, None)
            self._const.pop(rb, None)
            self._const[root] = winner
        return True, None, root, absorbed

    def resolve_value(self, sym: int) -> Any:
        """Constant value, or a :class:`Null` labelled by the class root."""
        root = self.find(sym)
        val = self._const.get(root, _CONST_SENTINEL)
        if val is _CONST_SENTINEL:
            return Null(root)
        return val


@dataclass(frozen=True)
class RowOrigin:
    """Provenance of a tableau row (for traces and counterexamples)."""

    kind: str  # "state", "seed", "jd"
    scheme: Optional[str] = None
    detail: str = ""


class ChaseTableau:
    """Rows of interned symbols over a fixed universe, with incremental
    indexes (see the module docstring for the index inventory)."""

    __slots__ = (
        "universe",
        "_cols",
        "_colidx",
        "symbols",
        "_rows",
        "_origins",
        "_occ",
        "_dirty",
        "_attr_index",
        "_shared",
        "_merge_count",
        "_resolved_cache",
    )

    def __init__(self, universe: AttrsLike):
        uni = AttributeSet(universe)
        if not uni:
            raise InstanceError("a tableau needs a non-empty universe")
        self.universe = uni
        self._cols: PyTuple[str, ...] = uni.names
        self._colidx = {a: i for i, a in enumerate(self._cols)}
        self.symbols = SymbolTable()
        self._rows: List[PyTuple[int, ...]] = []
        self._origins: List[RowOrigin] = []
        # root -> list of positions (row * ncols + col) held by the class.
        self._occ: Dict[int, List[int]] = {}
        # dirty worklist: row -> set of changed columns, or None = all.
        self._dirty: Dict[int, Optional[Set[int]]] = {}
        # lazily materialized per-column value index: col -> root -> rows.
        self._attr_index: Dict[int, Dict[int, Set[int]]] = {}
        # for each materialized column, the roots shared by ≥2 rows —
        # the only classes the FD-rule can ever fire on.
        self._shared: Dict[int, Set[int]] = {}
        self._merge_count = 0
        self._resolved_cache: Optional[PyTuple[PyTuple[int, int], List]] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_state(cls, state: DatabaseState) -> "ChaseTableau":
        """``I(p)``: pad every stored tuple to ``U`` with fresh variables."""
        tab = cls(state.schema.universe)
        for scheme, relation in state:
            for t in relation:
                tab.add_padded(scheme.attributes, t, RowOrigin("state", scheme.name))
        return tab

    @classmethod
    def from_relation(cls, universe: AttrsLike, relation: RelationInstance,
                      scheme_name: str = "r") -> "ChaseTableau":
        tab = cls(universe)
        for t in relation:
            tab.add_padded(relation.attributes, t, RowOrigin("state", scheme_name))
        return tab

    def add_padded(self, attrset: AttributeSet, t: Tuple, origin: RowOrigin) -> int:
        """Add a tuple over a sub-scheme, padded with fresh variables."""
        row = []
        for a in self._cols:
            if a in attrset:
                row.append(self.symbols.constant(t.value(a)))
            else:
                row.append(self.symbols.fresh_variable())
        return self.add_row(tuple(row), origin)

    def add_row(self, syms: PyTuple[int, ...], origin: RowOrigin) -> int:
        ncols = len(self._cols)
        if len(syms) != ncols:
            raise InstanceError("row arity does not match the universe")
        i = len(self._rows)
        self._rows.append(syms)
        self._origins.append(origin)
        find = self.symbols.find
        base = i * ncols
        occ = self._occ
        for c, sym in enumerate(syms):
            root = find(sym)
            bucket = occ.get(root)
            if bucket is None:
                occ[root] = [base + c]
            else:
                bucket.append(base + c)
            col_index = self._attr_index.get(c)
            if col_index is not None:
                members = col_index.get(root)
                if members is None:
                    col_index[root] = {i}
                else:
                    members.add(i)
                    if len(members) == 2:
                        self._shared[c].add(root)
        self._dirty[i] = None  # new rows are dirty in every column
        return i

    def seed_row(self, shared: Dict[str, int], origin: RowOrigin) -> int:
        """Add a row with given symbols in some columns, fresh elsewhere
        (used by implication tableaux)."""
        row = []
        for a in self._cols:
            row.append(shared.get(a, self.symbols.fresh_variable()))
        return self.add_row(tuple(row), origin)

    # -- merging (index-maintaining) ------------------------------------------

    def merge(self, a: int, b: int) -> PyTuple[bool, Optional[PyTuple[Any, Any]]]:
        """Union two symbol classes, keeping every index current.

        The rows holding a member of the absorbed class are marked
        dirty with the exact columns that changed; the occurrence and
        value indexes are rebucketed under the surviving root (whole
        absorbed buckets move at once — never row by row).  Returns
        ``(changed, conflict)`` exactly like :meth:`SymbolTable.merge`.
        """
        changed, conflict, survivor, absorbed = self.symbols.merge_roots(a, b)
        if not changed:
            return False, conflict
        self._merge_count += 1
        moved = self._occ.pop(absorbed, None)
        if moved:
            occ = self._occ
            bucket = occ.get(survivor)
            if bucket is None:
                occ[survivor] = moved
            else:
                bucket.extend(moved)
            ncols = len(self._cols)
            dirty = self._dirty
            attr_index = self._attr_index
            touched_cols: Set[int]
            if len(moved) == 1:
                r, c = divmod(moved[0], ncols)
                cols = dirty.get(r, _ABSENT)
                if cols is _ABSENT:
                    dirty[r] = {c}
                elif cols is not None:
                    cols.add(c)
                touched_cols = {c}
            else:
                touched_cols = set()
                for pos in moved:
                    r, c = divmod(pos, ncols)
                    cols = dirty.get(r, _ABSENT)
                    if cols is _ABSENT:
                        dirty[r] = {c}
                    elif cols is not None:
                        cols.add(c)
                    touched_cols.add(c)
            for c in touched_cols:
                col_index = attr_index.get(c)
                if col_index is None:
                    continue
                members = col_index.pop(absorbed, None)
                if members is None:
                    continue
                shared = self._shared[c]
                shared.discard(absorbed)
                existing = col_index.get(survivor)
                if existing is None:
                    col_index[survivor] = members
                    if len(members) >= 2:
                        shared.add(survivor)
                else:
                    existing.update(members)
                    if len(existing) >= 2:
                        shared.add(survivor)
        return True, None

    # -- dirty worklist ---------------------------------------------------------

    def drain_dirty(self) -> Dict[int, Optional[Set[int]]]:
        """Return and clear the dirty worklist.

        The result maps row index to the set of columns whose symbol
        class changed since the last drain; ``None`` means "all
        columns" (freshly added rows).
        """
        out = self._dirty
        self._dirty = {}
        return out

    def dirty_count(self) -> int:
        return len(self._dirty)

    # -- access ------------------------------------------------------------------

    @property
    def columns(self) -> PyTuple[str, ...]:
        return self._cols

    def column_index(self, attr: str) -> int:
        return self._colidx[attr]

    @property
    def version(self) -> PyTuple[int, int]:
        """``(rows, merges)`` — changes iff the tableau changed.  Used
        as the key of every memoized derived structure."""
        return (len(self._rows), self._merge_count)

    def __len__(self) -> int:
        return len(self._rows)

    def raw_row(self, i: int) -> PyTuple[int, ...]:
        return self._rows[i]

    def origin(self, i: int) -> RowOrigin:
        return self._origins[i]

    def resolved_row(self, i: int) -> PyTuple[int, ...]:
        """The row with every symbol replaced by its class root."""
        find = self.symbols.find
        return tuple(find(s) for s in self._rows[i])

    def resolved_rows(self) -> List[PyTuple[int, ...]]:
        """All rows resolved to class roots, memoized per :attr:`version`."""
        v = self.version
        cached = self._resolved_cache
        if cached is not None and cached[0] == v:
            return cached[1]
        find = self.symbols.find
        rows = [tuple(find(s) for s in row) for row in self._rows]
        self._resolved_cache = (v, rows)
        return rows

    def symbol_at(self, i: int, attr: str) -> int:
        return self.symbols.find(self._rows[i][self._colidx[attr]])

    # -- value index --------------------------------------------------------------

    def value_index(self, attr: str) -> Dict[int, Set[int]]:
        """The partition of rows by their symbol class in ``attr``.

        Materialized on first use for the column and maintained
        incrementally by :meth:`merge`/:meth:`add_row` from then on:
        the FD-rule reads it on every pass, so it must never be
        rebuilt from scratch once built.
        """
        c = self._colidx[attr]
        col_index = self._attr_index.get(c)
        if col_index is None:
            self.materialize_value_indexes([attr])
            col_index = self._attr_index[c]
        return col_index

    def materialize_value_indexes(self, attr_list: Iterable[str]) -> None:
        """Build the value indexes for several columns in one row scan
        (the FD-rule index wants one per distinct lhs attribute)."""
        targets = [
            (c, {})
            for c in {self._colidx[a] for a in attr_list}
            if c not in self._attr_index
        ]
        if not targets:
            return
        find = self.symbols.find
        for i, row in enumerate(self._rows):
            for c, col_index in targets:
                root = find(row[c])
                members = col_index.get(root)
                if members is None:
                    col_index[root] = {i}
                else:
                    members.add(i)
        for c, col_index in targets:
            self._attr_index[c] = col_index
            self._shared[c] = {
                root for root, members in col_index.items() if len(members) >= 2
            }

    def shared_classes(self, attr: str) -> Set[int]:
        """The symbol classes held by ≥2 rows in ``attr`` — the only
        candidates for an FD-rule firing on that column (materializes
        the column's value index on first use)."""
        c = self._colidx[attr]
        if c not in self._attr_index:
            self.materialize_value_indexes([attr])
        return self._shared[c]

    def check_index_invariants(self) -> None:
        """Verify every index against a from-scratch recomputation
        (test hook; O(rows × columns))."""
        find = self.symbols.find
        ncols = len(self._cols)
        expected_occ: Dict[int, Set[int]] = {}
        for i, row in enumerate(self._rows):
            for c, sym in enumerate(row):
                expected_occ.setdefault(find(sym), set()).add(i * ncols + c)
        actual = {root: set(ps) for root, ps in self._occ.items() if ps}
        assert actual == expected_occ, "occurrence index out of sync"
        for c, col_index in self._attr_index.items():
            expected: Dict[int, Set[int]] = {}
            for i, row in enumerate(self._rows):
                expected.setdefault(find(row[c]), set()).add(i)
            assert col_index == expected, f"value index for column {c} out of sync"
            expected_shared = {
                root for root, members in expected.items() if len(members) >= 2
            }
            assert self._shared[c] == expected_shared, (
                f"shared-class set for column {c} out of sync"
            )

    # -- extraction -----------------------------------------------------------------

    def to_relation(self) -> RelationInstance:
        """Materialize as a relation over ``U`` (variables → labelled
        nulls) — the weak instance when the chase succeeded."""
        resolve = self.symbols.resolve_value
        rows = []
        for row in self._rows:
            rows.append(tuple(resolve(s) for s in row))
        return RelationInstance(self.universe, rows)

    def total_projection(self, attrset: AttrsLike) -> RelationInstance:
        """Rows whose ``X``-values are all constants, projected on ``X``
        (the weak-instance query answer of [S1]/[M]).

        The result is a set: distinct rows only, even when many tableau
        rows resolve to the same constants (``RelationInstance`` would
        dedupe anyway — dropping duplicates here skips building the
        redundant tuples, which matters once a chased tableau has many
        rows grounded to the same facts).
        """
        target = AttributeSet(attrset)
        idxs = [self._colidx[a] for a in target]
        resolve = self.symbols.resolve_value
        rows = []
        seen: Set[PyTuple[Any, ...]] = set()
        for row in self._rows:
            vals = tuple(resolve(row[i]) for i in idxs)
            if vals not in seen and all(not is_null(v) for v in vals):
                seen.add(vals)
                rows.append(vals)
        return RelationInstance(target, rows)

    def pretty(self, max_rows: int = 30) -> str:
        resolve = self.symbols.resolve_value
        header = " | ".join(f"{c:>8}" for c in self._cols)
        lines = [header, "-" * len(header)]
        for i, row in enumerate(self._rows[:max_rows]):
            lines.append(" | ".join(f"{str(resolve(s)):>8}" for s in row))
        if len(self._rows) > max_rows:
            lines.append(f"… ({len(self._rows)} rows)")
        return "\n".join(lines)
