"""The naive (seed) chase engine, kept as a reference oracle.

This module preserves the original, un-indexed implementation of the
chase: every fixpoint pass of the FD-rule re-buckets **all** rows for
**every** FD, and every application of the JD-rule recomputes the full
per-component projections.  :mod:`repro.chase.engine` replaced it with
an incremental engine driven by the tableau's persistent indexes and
dirty-row worklist; the naive engine remains for two reasons:

* **equivalence testing** — the indexed engine must produce the same
  verdicts and (up to symbol renaming) the same tableaux on every
  input (``tests/test_chase_indexed.py``);
* **benchmarking** — ``benchmarks/bench_chase.py`` measures the
  indexed engine's speedup against this baseline and records it in
  ``BENCH_chase.json``.

The naive engine merges through ``tableau.symbols`` directly and does
**not** maintain the tableau's incremental indexes; do not run the
indexed engine on a tableau this module has already chased — build a
fresh tableau instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple as PyTuple

from repro.chase.engine import (
    ChaseResult,
    ChaseStep,
    Contradiction,
    DEFAULT_MAX_PASSES,
    DEFAULT_MAX_ROWS,
    _Budget,
)
from repro.chase.tableau import ChaseTableau, RowOrigin
from repro.deps.fd import FD
from repro.deps.jd import JoinDependency
from repro.deps.mvd import MVD


def _resolved_rows(tableau: ChaseTableau) -> List[PyTuple[int, ...]]:
    """Resolve without the tableau's version-keyed memo (naive merges
    bypass the version counter, which would poison the cache)."""
    find = tableau.symbols.find
    return [
        tuple(find(s) for s in tableau.raw_row(i)) for i in range(len(tableau))
    ]


def _chase_fds_once_naive(
    tableau: ChaseTableau,
    fd_list: Sequence[FD],
    result: ChaseResult,
    record_steps: bool = False,
) -> bool:
    """One full pass of the FD-rule over all FDs and all rows."""
    symbols = tableau.symbols
    changed = False
    for f in fd_list:
        lhs_idx = [tableau.column_index(a) for a in f.lhs]
        rhs_cols = [(a, tableau.column_index(a)) for a in f.effective_rhs]
        if not rhs_cols:
            continue
        buckets: Dict[PyTuple[int, ...], int] = {}
        for i in range(len(tableau)):
            row = tableau.raw_row(i)
            key = tuple(symbols.find(row[j]) for j in lhs_idx)
            leader = buckets.get(key)
            if leader is None:
                buckets[key] = i
                continue
            lead_row = tableau.raw_row(leader)
            for attr, j in rhs_cols:
                merged, conflict = symbols.merge(lead_row[j], row[j])
                if conflict is not None:
                    result.consistent = False
                    result.contradiction = Contradiction(
                        fd=f, attribute=attr, values=conflict, row_a=leader, row_b=i
                    )
                    if record_steps:
                        result.steps.append(
                            ChaseStep(fd=f, attribute=attr, row_a=leader, row_b=i)
                        )
                    return changed
                if merged:
                    changed = True
                    result.fd_merges += 1
                    if record_steps:
                        result.steps.append(
                            ChaseStep(fd=f, attribute=attr, row_a=leader, row_b=i)
                        )
    return changed


def chase_fds_naive(
    tableau: ChaseTableau,
    fd_list: Iterable[FD],
    max_passes: int = DEFAULT_MAX_PASSES,
    record_steps: bool = False,
) -> ChaseResult:
    """FD-only chase to fixpoint by full re-scanning passes."""
    fds = tuple(fd_list)
    result = ChaseResult(tableau=tableau, consistent=True)
    budget = _Budget(DEFAULT_MAX_ROWS, max_passes)
    while True:
        budget.tick()
        changed = _chase_fds_once_naive(tableau, fds, result, record_steps=record_steps)
        if not result.consistent or not changed:
            break
    return result


def _apply_jd_rule_naive(
    tableau: ChaseTableau, jd: JoinDependency, budget: _Budget, result: ChaseResult
) -> bool:
    """One application round of the JD-rule, recomputing all
    projections from scratch."""
    cols = tableau.columns
    if jd.universe != tableau.universe:
        raise ValueError(
            f"JD over {jd.universe} cannot be chased on a tableau over "
            f"{tableau.universe}"
        )
    resolved = _resolved_rows(tableau)
    existing = set(resolved)

    components = list(jd.components)
    sofar_attrs: List[str] = [a for a in cols if a in components[0]]
    sofar: set = {
        tuple(row[tableau.column_index(a)] for a in sofar_attrs) for row in resolved
    }
    for comp in components[1:]:
        comp_attrs = [a for a in cols if a in comp]
        comp_rows = {
            tuple(row[tableau.column_index(a)] for a in comp_attrs) for row in resolved
        }
        common = [a for a in sofar_attrs if a in comp]
        comp_pos = {a: k for k, a in enumerate(comp_attrs)}
        index: Dict[PyTuple[int, ...], List[PyTuple[int, ...]]] = {}
        for crow in comp_rows:
            key = tuple(crow[comp_pos[a]] for a in common)
            index.setdefault(key, []).append(crow)
        sofar_pos = {a: k for k, a in enumerate(sofar_attrs)}
        extra_attrs = [a for a in comp_attrs if a not in sofar_pos]
        joined: set = set()
        for prow in sofar:
            key = tuple(prow[sofar_pos[a]] for a in common)
            for crow in index.get(key, ()):
                joined.add(prow + tuple(crow[comp_pos[a]] for a in extra_attrs))
            budget.check_rows(len(joined))
        sofar = joined
        sofar_attrs = sofar_attrs + extra_attrs
        if not sofar:
            return False

    pos = {a: k for k, a in enumerate(sofar_attrs)}
    order = [pos[a] for a in cols]
    added = False
    for prow in sofar:
        full = tuple(prow[k] for k in order)
        if full in existing:
            continue
        tableau.add_row(full, RowOrigin("jd", detail=str(jd)))
        existing.add(full)
        added = True
        budget.check_rows(len(existing))
    if added:
        result.jd_rows_added += 1
    return added


def chase_naive(
    tableau: ChaseTableau,
    fd_list: Iterable[FD] = (),
    jds: Iterable[JoinDependency] = (),
    mvds: Iterable[MVD] = (),
    max_rows: int = DEFAULT_MAX_ROWS,
    max_passes: int = DEFAULT_MAX_PASSES,
) -> ChaseResult:
    """The full naive chase: FD-rule to fixpoint, then JD/MVD rules,
    repeated until nothing changes or a contradiction surfaces."""
    fds = tuple(fd_list)
    all_jds: List[JoinDependency] = list(jds)
    for m in mvds:
        all_jds.append(m.as_jd())
    result = ChaseResult(tableau=tableau, consistent=True)
    budget = _Budget(max_rows, max_passes)

    while True:
        while True:
            budget.tick()
            changed = _chase_fds_once_naive(tableau, fds, result)
            if not result.consistent:
                return result
            if not changed:
                break
        grew = False
        for jd in all_jds:
            budget.tick()
            if _apply_jd_rule_naive(tableau, jd, budget, result):
                grew = True
        if not grew:
            return result
