"""Column-major bulk chase kernel for from-scratch FD fixpoints.

The incremental engine (:mod:`repro.chase.engine`) is built for *live*
tableaux: persistent per-FD partitions, a dirty-row worklist, and full
index maintenance on every merge, so that one inserted tuple costs the
cascade it actually triggers.  All of that machinery is pure overhead
on the paths that chase a **fresh** tableau to fixpoint and only then
start serving: service cold loads, delete-fallback and compaction
rebuilds, the sharded composer's journal-overflow resync, and
``MaintenanceChecker(method="chase")`` batch validation.  This module
executes those chases **set-at-a-time**:

* The tableau is snapshotted into per-column dense ``array('q')``
  symbol vectors (one ``zip`` transpose — rows are never walked
  row-at-a-time again).
* Every column some FD keys on gets a **class chain**: an intrusive
  linked list over row indexes (``next`` stored in one int array per
  column, head/tail per class root), grouping the column's rows by
  symbol class.  On a fresh columnar tableau every class lives in
  exactly one column (constants intern per column, padding variables
  are fresh, and the FD-rule only ever merges two symbols of the same
  column), so concatenating two chains under the union's surviving
  root is O(1) and keeps the grouping exact throughout the run.
* The fixpoint is **semi-naive at class granularity**: one seeding
  pass buckets each FD's left-hand side over its whole column(s) and
  merges the right-hand sides of same-key rows batch-wise; after that,
  a worklist of ``(column, class, delta-chain)`` records — appended by
  each union — drives re-examination of exactly the rows that just
  joined a class, under exactly the FDs whose lhs mentions that
  column.  No per-row dirty sets, no full re-bucketing rounds.
* Unions go straight into the shared :class:`~repro.util.unionfind.
  IntUnionFind` (inlined union-by-size with the symbol table's
  constant/contradiction handling), bypassing
  :meth:`~repro.chase.tableau.ChaseTableau.merge` entirely.  The
  bookkeeping that method would have done is settled once at the end
  by :meth:`~repro.chase.tableau.ChaseTableau.install_bulk_chase`:
  merge count, deferred occurrence index, and — when requested — the
  batch-recorded merge provenance, installed into the same log
  indexes the live path maintains.

The result is a tableau *indistinguishable* from one chased by the
incremental engine (the randomized three-way oracle suite pins bulk
vs. incremental vs. naive): :class:`~repro.chase.engine.
IncrementalFDChaser` can adopt it mid-flight via the handoff seam
(its per-FD buckets seeded from :meth:`BulkFDChaser.handoff_buckets`),
after which appends chase incrementally and provenance-scoped deletes
retract against the bulk-recorded log exactly as if every merge had
been logged live.

Scope: the kernel handles the FD-rule only (the paper's polynomial
fast path, Lemma 4) and requires :attr:`~repro.chase.tableau.
ChaseTableau.bulk_eligible` — fresh, columnar, nothing retracted.
``chase_fds``/``chase`` route eligible tableaux here automatically
above :data:`BULK_MIN_ROWS` rows; everything else stays on the
incremental engine.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.chase.engine import ChaseResult, ChaseStep, Contradiction
from repro.chase.tableau import ChaseTableau, RowOrigin, _CONST_SENTINEL
from repro.deps.fd import FD
from repro.exceptions import InstanceError

#: Below this many rows the bulk kernel's columnar setup costs more
#: than it saves and auto-routing keeps the row-at-a-time path (the
#: kernel itself works at any size — tests force it on tiny tableaux).
BULK_MIN_ROWS = 128

_SENT = _CONST_SENTINEL


def bulk_eligible(tableau: ChaseTableau) -> bool:
    """Should an automatic router send this from-scratch chase through
    the bulk kernel?  Structural eligibility (fresh + columnar) plus
    the size cutoff."""
    return tableau.bulk_eligible and len(tableau) >= BULK_MIN_ROWS


def ingest_state(schema, state, tableau: Optional[ChaseTableau] = None):
    """Column-major bulk ingest of a whole database state into a fresh
    tableau — the cold-load path shared by service rebuilds and the
    durable layer's snapshot recovery.

    Duplicate tuples within a relation collapse to one row (set
    semantics, matching the maintenance checker), and the returned
    ``(scheme name, tuple) → row`` locator names each tuple's single
    row, which is what provenance-scoped deletes retract.  The rows go
    through :meth:`~repro.chase.tableau.ChaseTableau.bulk_ingest`, so
    the resulting tableau is in the column-major layout the bulk
    kernel wants (``bulk_eligible`` until something chases or retracts
    it).  Pass a pre-built ``tableau`` to keep caller-applied settings
    such as a version-stamp floor; it must be empty.
    """
    if tableau is None:
        tableau = ChaseTableau(schema.universe)
    row_of: Dict[PyTuple[str, object], int] = {}
    ingest = tableau.bulk_ingest()
    for scheme, relation in state:
        origin = RowOrigin("state", scheme.name)
        attrs = scheme.attributes
        name = scheme.name
        for t in relation:
            key = (name, t)
            if key in row_of:
                continue
            row_of[key] = ingest.add_padded(attrs, t, origin)
    ingest.finish()
    return tableau, row_of


class BulkFDChaser:
    """One bulk FD-fixpoint run over one fresh tableau.

    Construct, :meth:`run` once, then either read the
    :class:`~repro.chase.engine.ChaseResult` and drop the object
    (batch validation), or hand it to
    :class:`~repro.chase.engine.IncrementalFDChaser` as the
    ``_handoff`` seed so the live engine continues where the kernel
    stopped (service cold loads).  ``log_merges=True`` batch-records
    merge provenance so the chased tableau supports provenance-scoped
    retraction, exactly like a live-logged one.
    """

    __slots__ = ("tableau", "fds", "_log_merges", "_buckets", "_ran")

    def __init__(
        self,
        tableau: ChaseTableau,
        fd_list: Sequence[FD],
        log_merges: bool = False,
    ):
        # reject ineligible tableaux before any side effect: enabling
        # the merge log on a tableau with pre-existing unlogged merges
        # would gap its log for good, even though run() never chases
        if not tableau.bulk_eligible:
            raise InstanceError(
                "the bulk kernel needs a fresh columnar tableau (no "
                "merges, no retractions, per-column symbols); chase "
                "incrementally instead"
            )
        self.tableau = tableau
        self.fds = tuple(fd_list)
        self._log_merges = log_merges
        self._buckets: Optional[List[Dict]] = None
        self._ran = False
        if log_merges:
            tableau.enable_merge_log()

    # -- the kernel -------------------------------------------------------------

    def run(self, record_steps: bool = False) -> ChaseResult:
        """Drive the FD-rule to fixpoint set-at-a-time (see the module
        docstring for the algorithm)."""
        if self._ran:
            raise InstanceError("a BulkFDChaser runs exactly once")
        self._ran = True
        tableau = self.tableau
        if not tableau.bulk_eligible:
            # eligibility was checked at construction; it only degrades
            # if someone mutated the tableau in between
            raise InstanceError(
                "tableau stopped being bulk-eligible between kernel "
                "construction and run()"
            )
        fds = self.fds
        result = ChaseResult(tableau=tableau, consistent=True)
        symbols = tableau.symbols
        uf = symbols._uf
        parent = uf._parent
        size = uf._size
        find = uf.find
        const = symbols._const
        const_get = const.get
        const_pop = const.pop
        rows = tableau._rows
        n = len(rows)
        col_names = tableau.columns
        ncols = len(col_names)
        colidx = tableau._colidx
        self._buckets = buckets = [dict() for _ in fds]
        events: Optional[List[PyTuple]] = [] if self._log_merges else None
        if n == 0 or not fds:
            tableau.install_bulk_chase(0, events)
            return result

        # columnar snapshot: per-column dense symbol vectors
        cols = [array("q", col) for col in zip(*rows)]

        # -- per-FD metadata ---------------------------------------------------
        singles: List[PyTuple] = []   # (k, lhs_idx, rhs_idx, fd)
        multis: List[PyTuple] = []
        lhs_cols_used: Set[int] = set()
        fds_by_col: Dict[int, List[int]] = {}
        # per-FD column metadata, shared by the seeding pass and the
        # drain (one derivation — the two phases must never disagree)
        fd_meta: Dict[int, PyTuple] = {}
        for k, f in enumerate(fds):
            lhs_idx = tuple(colidx[a] for a in f.lhs)
            rhs_idx = tuple(colidx[a] for a in f.effective_rhs)
            if not rhs_idx:
                continue  # trivial FD: nothing to equate
            for c in lhs_idx:
                lhs_cols_used.add(c)
                fds_by_col.setdefault(c, []).append(k)
            entry = (k, lhs_idx, rhs_idx, f)
            fd_meta[k] = entry
            (singles if len(lhs_idx) == 1 else multis).append(entry)

        # -- class chains over every keyed column ------------------------------
        # heads/tails: class root -> first/last row of the class in the
        # column; nxts: per-column intrusive next-row array.  shared
        # collects the roots held by >=2 rows at build time — the only
        # seeding-pass candidates (a class that becomes shared later
        # does so through a union, which enqueues it on the worklist).
        heads: List[Optional[Dict[int, int]]] = [None] * ncols
        tails: List[Optional[Dict[int, int]]] = [None] * ncols
        nxts: List[Optional[array]] = [None] * ncols
        shared_roots: Dict[int, List[int]] = {}
        for c in lhs_cols_used:
            hc: Dict[int, int] = {}
            tc: Dict[int, int] = {}
            nc = array("q", bytes(8 * n))
            shared: List[int] = []
            col = cols[c]
            tc_get = tc.get
            for i in range(n):
                s = col[i]
                last = tc_get(s)
                if last is None:
                    hc[s] = i
                else:
                    if hc[s] == last:  # second member: class became shared
                        shared.append(s)
                    nc[last] = i
                tc[s] = i
                nc[i] = -1
            heads[c], tails[c], nxts[c] = hc, tc, nc
            shared_roots[c] = shared

        dirty: deque = deque()
        dirty_append = dirty.append
        merges = 0
        steps = result.steps if record_steps else None

        def merge_pair(leader: int, r: int, rhs_idx, lhs_idx, f) -> bool:
            """Cold-path FD application to one row pair (seeding pass,
            multi-column lhs, multi-column rhs); the hot drain loop
            below inlines the same logic.  Returns False on
            contradiction."""
            nonlocal merges
            lead_row = rows[leader]
            row = rows[r]
            for jj in rhs_idx:
                a = lead_row[jj]
                ra = parent[a]
                if parent[ra] != ra:
                    ra = find(a)
                b = row[jj]
                rb = parent[b]
                if parent[rb] != rb:
                    rb = find(b)
                if rb == ra:
                    continue
                ca = const_get(ra, _SENT)
                cb = const_get(rb, _SENT)
                if ca is not _SENT and cb is not _SENT and ca != cb:
                    result.consistent = False
                    result.contradiction = Contradiction(
                        fd=f, attribute=col_names[jj], values=(ca, cb),
                        row_a=leader, row_b=r,
                    )
                    if steps is not None:
                        steps.append(ChaseStep(
                            fd=f, attribute=col_names[jj], row_a=leader, row_b=r,
                        ))
                    return False
                if size[ra] < size[rb]:
                    sroot, absorbed = rb, ra
                else:
                    sroot, absorbed = ra, rb
                parent[absorbed] = sroot
                size[sroot] += size[absorbed]
                if ca is not _SENT or cb is not _SENT:
                    const_pop(absorbed, None)
                    const[sroot] = ca if ca is not _SENT else cb
                merges += 1
                if events is not None:
                    events.append((leader, r, jj, a, b, lhs_idx, f))
                if steps is not None:
                    steps.append(ChaseStep(
                        fd=f, attribute=col_names[jj], row_a=leader, row_b=r,
                    ))
                hj = heads[jj]
                if hj is not None:
                    hb = hj.pop(absorbed, None)
                    if hb is not None:
                        tj = tails[jj]
                        tb = tj.pop(absorbed)
                        if sroot in hj:
                            nxts[jj][tj[sroot]] = hb
                        else:
                            hj[sroot] = hb
                        tj[sroot] = tb
                        dirty_append((jj, sroot, hb))
            return True

        # -- seeding pass: bucket whole columns, merge same-key rows -----------
        consistent = True
        for k, lhs_idx, rhs_idx, f in singles:
            bk = buckets[k]
            c = lhs_idx[0]
            hc, nc = heads[c], nxts[c]
            for root in shared_roots[c]:
                h = hc.get(root)
                if h is None:
                    continue  # absorbed by an earlier union; its
                    # survivor is on the worklist
                bk[root] = h
                r = nc[h]
                while r != -1:
                    if not merge_pair(h, r, rhs_idx, lhs_idx, f):
                        consistent = False
                        break
                    r = nc[r]
                if not consistent:
                    break
            if not consistent:
                break
        if consistent:
            for k, lhs_idx, rhs_idx, f in multis:
                bk = buckets[k]
                lhs_arrs = [cols[c] for c in lhs_idx]
                for i in range(n):
                    key_parts = []
                    for col in lhs_arrs:
                        s = col[i]
                        rr = parent[s]
                        if parent[rr] != rr:
                            rr = find(s)
                        key_parts.append(rr)
                    key = tuple(key_parts)
                    leader = bk.get(key)
                    if leader is None:
                        bk[key] = i
                    elif not merge_pair(leader, i, rhs_idx, lhs_idx, f):
                        consistent = False
                        break
                if not consistent:
                    break

        # -- per-column drain metadata ----------------------------------------
        # (bucket, single-rhs col or None, rhs_idx, lhs_idx, fd, single-lhs?)
        col_fds: List[Optional[List[PyTuple]]] = [None] * ncols
        for c, ks in fds_by_col.items():
            entries = []
            for k in ks:
                _, lhs_idx, rhs_idx, f = fd_meta[k]
                is_single = len(lhs_idx) == 1
                single_rhs = rhs_idx[0] if is_single and len(rhs_idx) == 1 else None
                entries.append(
                    (buckets[k], single_rhs, rhs_idx, lhs_idx, f, is_single)
                )
            col_fds[c] = entries

        # -- semi-naive drain: (column, class, delta-chain) records ------------
        while consistent and dirty:
            j, root, delta = dirty.popleft()
            r0 = parent[root]
            if parent[r0] != r0:
                r0 = find(root)
            nc = nxts[j]
            for bk, single_rhs, rhs_idx, lhs_idx, f, is_single in col_fds[j]:
                if is_single:
                    leader = bk.get(r0)
                    if leader is None:
                        # first touch of this class under this FD: lead
                        # and sweep the whole chain, not just the delta
                        start = heads[j].get(r0)
                        if start is None:
                            continue  # absorbed since queueing; the
                            # survivor's record covers these rows
                        bk[r0] = leader = start
                    else:
                        start = delta
                    if single_rhs is None:
                        r = start
                        while r != -1:
                            if r != leader and not merge_pair(
                                leader, r, rhs_idx, lhs_idx, f
                            ):
                                consistent = False
                                break
                            r = nc[r]
                        if not consistent:
                            break
                        continue
                    # ---- hot path: 1-column lhs and rhs, fully inlined;
                    # the leader's class root and constant are carried
                    # across the walk instead of re-resolved per pair ----
                    jj = single_rhs
                    a = rows[leader][jj]
                    ra = parent[a]
                    if parent[ra] != ra:
                        ra = find(a)
                    ca = const_get(ra, _SENT)
                    r = start
                    while r != -1:
                        if r != leader:
                            b = rows[r][jj]
                            rb = parent[b]
                            if parent[rb] != rb:
                                rb = find(b)
                            if rb != ra:
                                cb = const_get(rb, _SENT)
                                if cb is not _SENT and ca is not _SENT and ca != cb:
                                    result.consistent = False
                                    result.contradiction = Contradiction(
                                        fd=f, attribute=col_names[jj],
                                        values=(ca, cb), row_a=leader, row_b=r,
                                    )
                                    if steps is not None:
                                        steps.append(ChaseStep(
                                            fd=f, attribute=col_names[jj],
                                            row_a=leader, row_b=r,
                                        ))
                                    consistent = False
                                    break
                                if size[ra] < size[rb]:
                                    sroot, absorbed = rb, ra
                                else:
                                    sroot, absorbed = ra, rb
                                parent[absorbed] = sroot
                                size[sroot] += size[absorbed]
                                if cb is not _SENT:
                                    const_pop(absorbed, None)
                                    const[sroot] = ca = ca if ca is not _SENT else cb
                                elif ca is not _SENT:
                                    const_pop(absorbed, None)
                                    const[sroot] = ca
                                merges += 1
                                if events is not None:
                                    events.append(
                                        (leader, r, jj, a, b, lhs_idx, f)
                                    )
                                if steps is not None:
                                    steps.append(ChaseStep(
                                        fd=f, attribute=col_names[jj],
                                        row_a=leader, row_b=r,
                                    ))
                                hj = heads[jj]
                                if hj is not None:
                                    hb = hj.pop(absorbed, None)
                                    if hb is not None:
                                        tj = tails[jj]
                                        tb = tj.pop(absorbed)
                                        if sroot in hj:
                                            nxts[jj][tj[sroot]] = hb
                                        else:
                                            hj[sroot] = hb
                                        tj[sroot] = tb
                                        dirty_append((jj, sroot, hb))
                                ra = sroot
                        r = nc[r]
                    if not consistent:
                        break
                else:
                    # multi-column lhs: re-key exactly the delta rows
                    lhs_arrs = [cols[c] for c in lhs_idx]
                    r = delta
                    while r != -1:
                        key_parts = []
                        for col in lhs_arrs:
                            s = col[r]
                            rr = parent[s]
                            if parent[rr] != rr:
                                rr = find(s)
                            key_parts.append(rr)
                        key = tuple(key_parts)
                        leader = bk.get(key)
                        if leader is None:
                            bk[key] = r
                        elif leader != r and not merge_pair(
                            leader, r, rhs_idx, lhs_idx, f
                        ):
                            consistent = False
                            break
                        r = nc[r]
                    if not consistent:
                        break

        result.fd_merges = merges
        tableau.install_bulk_chase(merges, events)
        return result

    # -- the handoff seam -------------------------------------------------------

    def handoff_buckets(self) -> List[Dict]:
        """Per-FD lhs-key partitions for seeding an incremental
        :class:`~repro.chase.engine._FDRuleIndex` over the chased
        tableau (same shape: single-attribute lhs keyed by class root,
        multi-attribute by root tuple, values are leader rows).

        Keys are re-resolved to current roots — entries recorded under
        since-absorbed roots collapse onto the surviving class (any of
        the colliding leaders is valid: their right-hand sides were
        merged by the run that collapsed them).
        """
        if self._buckets is None:
            raise InstanceError("run() the kernel before handing off")
        find = self.tableau.symbols.find
        out: List[Dict] = []
        for k, f in enumerate(self.fds):
            bk = self._buckets[k]
            if len(f.lhs) == 1:
                out.append({find(root): leader for root, leader in bk.items()})
            else:
                out.append({
                    tuple(find(x) for x in key): leader
                    for key, leader in bk.items()
                })
        return out


def chase_fds_bulk(
    tableau: ChaseTableau,
    fd_list: Sequence[FD],
    log_merges: bool = False,
    record_steps: bool = False,
) -> ChaseResult:
    """Chase a fresh columnar tableau with the FD-rule to fixpoint,
    set-at-a-time (the bulk counterpart of
    :func:`repro.chase.engine.chase_fds`)."""
    return BulkFDChaser(tableau, fd_list, log_merges=log_merges).run(
        record_steps=record_steps
    )
