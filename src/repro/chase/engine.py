"""The chase procedure of [MMS] (Section 2 of the paper), incremental.

Two rules operate on a :class:`~repro.chase.tableau.ChaseTableau`:

* **FD-rule** — for ``X → Y`` and two rows agreeing on ``X`` but
  disagreeing on ``B ∈ Y``: merge the two ``B``-symbols (replacing a
  variable by the other symbol everywhere).  Merging two distinct
  *constants* is a contradiction: the chased state is unsatisfiable.
* **JD-rule** — for ``*{S1,…,Sn}``: any universal tuple whose
  ``Si``-projection matches an existing row for every ``i`` is added
  (i.e. the tableau is closed under the join of its projections).

``chase`` alternates the FD-closure and the JD-rule until a fixpoint or
a contradiction.  MVDs are chased through their equivalent binary JDs.

Unlike the naive engine (preserved in :mod:`repro.chase.reference`),
fixpoint passes here are **incremental**: the first pass builds a
persistent partition of the rows by resolved left-hand-side key for
every FD (:class:`_FDRuleIndex`), and every later pass touches only
the rows the tableau's dirty worklist reports as changed — and only
under the FDs whose left-hand side mentions a changed column.
Single-attribute left-hand sides read the tableau's per-attribute
value index (:meth:`~repro.chase.tableau.ChaseTableau.value_index`)
directly, so rows with an unshared key are skipped without touching
any per-FD state.  The JD-rule keeps per-component projections in a
version-keyed cache (:class:`_ProjectionCache`) and is skipped
entirely when the tableau has not changed since its last application.

From-scratch chases of fresh columnar tableaux are not driven here at
all: ``chase_fds``/``chase`` route them to the column-major bulk
kernel (:mod:`repro.chase.bulk`) above its size cutoff, and this
engine adopts the kernel's output mid-flight through the handoff seam
(:class:`IncrementalFDChaser` with ``_handoff=``, buckets pre-seeded)
— the incremental machinery then serves exactly what it is built for:
the per-operation deltas of a live tableau.

The engine records a structured trace and enforces a step/row budget so
pathological cyclic cases fail loudly (:class:`ChaseBudgetExceeded`)
instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple as PyTuple,
)

from repro.chase.tableau import ChaseTableau, RowOrigin
from repro.deps.fd import FD
from repro.deps.jd import JoinDependency
from repro.deps.mvd import MVD
from repro.exceptions import ChaseBudgetExceeded, InconsistentStateError
from repro.schema.attributes import AttributeSet

DEFAULT_MAX_ROWS = 100_000
DEFAULT_MAX_PASSES = 10_000


@dataclass(frozen=True)
class Contradiction:
    """Witness of a chase contradiction: the FD whose application tried
    to equate two distinct constants."""

    fd: FD
    attribute: str
    values: PyTuple[Any, Any]
    row_a: int
    row_b: int

    def __str__(self) -> str:
        va, vb = self.values
        return (
            f"FD {self.fd} forces {self.attribute} to be both "
            f"{va!r} and {vb!r} (rows {self.row_a}, {self.row_b})"
        )


@dataclass(frozen=True)
class ChaseStep:
    """One recorded FD-rule application (``record_steps=True``)."""

    fd: FD
    attribute: str
    row_a: int
    row_b: int

    def describe(self, tableau: ChaseTableau) -> str:
        oa, ob = tableau.origin(self.row_a), tableau.origin(self.row_b)
        where_a = oa.scheme or oa.kind
        where_b = ob.scheme or ob.kind
        return (
            f"{self.fd} equated {self.attribute} between rows "
            f"{self.row_a} ({where_a}) and {self.row_b} ({where_b})"
        )


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    tableau: ChaseTableau
    consistent: bool
    contradiction: Optional[Contradiction] = None
    steps: List[ChaseStep] = field(default_factory=list)
    fd_merges: int = 0
    jd_rows_added: int = 0

    def __bool__(self) -> bool:
        return self.consistent


class _Budget:
    __slots__ = ("max_rows", "max_passes", "passes")

    def __init__(self, max_rows: int, max_passes: int):
        self.max_rows = max_rows
        self.max_passes = max_passes
        self.passes = 0

    def tick(self) -> None:
        self.passes += 1
        if self.passes > self.max_passes:
            raise ChaseBudgetExceeded(
                f"chase exceeded {self.max_passes} passes; "
                "raise max_passes if this input is genuinely this large"
            )

    def check_rows(self, n: int) -> None:
        if n > self.max_rows:
            raise ChaseBudgetExceeded(
                f"chase tableau exceeded {self.max_rows} rows; "
                "raise max_rows if this input is genuinely this large"
            )


@dataclass(frozen=True)
class _RuleMetadata:
    """The static, tableau-independent part of a :class:`_FDRuleIndex`
    — a pure function of (universe column order, FD sequence).  Kept
    *instead of* a whole driver when a service wants cheap rebuilds:
    retaining a dead driver would pin its entire superseded tableau
    (rows, buckets, value indexes) in memory."""

    columns: PyTuple[str, ...]
    lhs_idx: PyTuple[PyTuple[int, ...], ...]
    rhs_cols: PyTuple[PyTuple[PyTuple[str, int], ...], ...]
    single_col: PyTuple[Optional[int], ...]
    fds_by_col: Dict[int, List[int]]


class _FDRuleIndex:
    """Persistent per-FD partition of the rows by resolved lhs key.

    For each FD the partition maps the resolved key of a row's
    left-hand side — a single class root for one-attribute lhs, a
    tuple of roots otherwise — to the *leader* row all same-key rows
    merge their rhs symbols into.  While the tableau only grows, a
    bucket entry never goes stale: a key is looked up only while every
    root in it is alive, and while those roots are alive the leader's
    symbols remain in exactly those classes (union-find classes never
    shrink), so the leader's key cannot have drifted.  Row retraction
    breaks that premise — dissolving a class revives its original
    symbols as fresh roots — so :meth:`process_dirty` additionally
    validates the leader on every bucket read and sweeps stale entries
    aside (cheap: one resolve per lhs attribute).  Dead keys merely
    occupy memory.

    Single-attribute FDs do not even keep private buckets on the fast
    path: the tableau's per-attribute value index already *is* the
    partition, so a dirty row whose class holds no other row in that
    column is dismissed with one set lookup.
    """

    __slots__ = ("tableau", "fds", "_lhs_idx", "_rhs_cols", "_single_col",
                 "_buckets", "_fds_by_col", "_value_index", "_shared")

    def __init__(
        self,
        tableau: ChaseTableau,
        fds: Sequence[FD],
        template: Optional[_RuleMetadata] = None,
        buckets: Optional[List[Dict]] = None,
    ):
        self.tableau = tableau
        self.fds = fds
        self._value_index: Dict[int, Dict[int, Set[int]]] = {}
        if buckets is not None and len(buckets) != len(fds):
            raise ValueError("seeded buckets do not match the FD list")
        if template is not None:
            # A rebuilt tableau over the same universe (services rebuild
            # shard/composer tableaus from state many times): the per-FD
            # column metadata is a function of (universe, fds) only, so
            # share it and reset just the per-tableau buckets.
            if template.columns != tableau.columns:
                raise ValueError(
                    "rule-index template is over a different universe"
                )
            if len(template.lhs_idx) != len(fds):
                raise ValueError(
                    "rule-index template was derived from a different FD list"
                )
            self._lhs_idx = list(template.lhs_idx)
            self._rhs_cols = list(template.rhs_cols)
            self._single_col = list(template.single_col)
            # copy: the template is shared across driver generations,
            # so no index may alias its (mutable) dict-of-lists
            self._fds_by_col = {
                c: list(ks) for c, ks in template.fds_by_col.items()
            }
            self._buckets = buckets if buckets is not None else [{} for _ in fds]
            single_attrs = [
                tableau.columns[c] for c in self._single_col if c is not None
            ]
        else:
            self._lhs_idx = []
            self._rhs_cols = []
            self._single_col = []
            self._buckets = (
                list(buckets) if buckets is not None else [{} for _ in fds]
            )
            self._fds_by_col = {}
            single_attrs = []
            for k, f in enumerate(fds):
                lhs_idx = tuple(tableau.column_index(a) for a in f.lhs)
                rhs_cols = tuple(
                    (a, tableau.column_index(a)) for a in f.effective_rhs
                )
                self._lhs_idx.append(lhs_idx)
                self._rhs_cols.append(rhs_cols)
                single = lhs_idx[0] if len(lhs_idx) == 1 and rhs_cols else None
                self._single_col.append(single)
                if rhs_cols:
                    for c in lhs_idx:
                        self._fds_by_col.setdefault(c, []).append(k)
                    if single is not None:
                        single_attrs.append(tableau.columns[single])
        # materialize (and from then on share) the tableau's
        # per-attribute partitions, all in one row scan
        self._shared: Dict[int, Set[int]] = {}
        tableau.materialize_value_indexes(single_attrs)
        for attr in single_attrs:
            c = tableau.column_index(attr)
            self._value_index[c] = tableau.value_index(attr)
            self._shared[c] = tableau.shared_classes(attr)

    def metadata(self) -> _RuleMetadata:
        """The static template for building an index over a rebuilt
        tableau of the same universe (safe to retain: holds no tableau
        references)."""
        return _RuleMetadata(
            columns=self.tableau.columns,
            lhs_idx=tuple(self._lhs_idx),
            rhs_cols=tuple(self._rhs_cols),
            single_col=tuple(self._single_col),
            fds_by_col={c: list(ks) for c, ks in self._fds_by_col.items()},
        )

    # -- merging helpers -------------------------------------------------------

    def _merge_pair(
        self,
        k: int,
        leader: int,
        i: int,
        result: ChaseResult,
        record_steps: bool,
    ) -> bool:
        """Apply the FD-rule to one row pair; returns False on
        contradiction (recorded on ``result``)."""
        tableau = self.tableau
        lead_row = tableau.raw_row(leader)
        row = tableau.raw_row(i)
        f = self.fds[k]
        lhs_idx = self._lhs_idx[k]
        for attr, j in self._rhs_cols[k]:
            merged, conflict = tableau.merge(
                lead_row[j], row[j], leader, i, j, lhs_idx, f
            )
            if conflict is not None:
                result.consistent = False
                result.contradiction = Contradiction(
                    fd=f, attribute=attr, values=conflict, row_a=leader, row_b=i
                )
                if record_steps:
                    result.steps.append(
                        ChaseStep(fd=f, attribute=attr, row_a=leader, row_b=i)
                    )
                return False
            if merged:
                result.fd_merges += 1
                if record_steps:
                    result.steps.append(
                        ChaseStep(fd=f, attribute=attr, row_a=leader, row_b=i)
                    )
        return True

    # -- the initial full pass -------------------------------------------------

    def process_all(self, result: ChaseResult, record_steps: bool = False) -> None:
        """Seed the partitions with every current *live* row (one full
        pass; retracted rows must never become leaders or merge
        partners, or a fresh chase would resurrect their groundings)."""
        tableau = self.tableau
        find = tableau.symbols.find
        is_retracted = tableau.is_retracted
        for k in range(len(self.fds)):
            if not self._rhs_cols[k]:
                continue
            single = self._single_col[k]
            buckets = self._buckets[k]
            if single is not None:
                # read the shared-class partition directly: only classes
                # held by ≥2 rows can violate the FD, and the tableau
                # tracks exactly those
                vi = self._value_index[single]
                for root in sorted(self._shared[single]):
                    members = vi.get(root)
                    if members is None or len(members) < 2:
                        continue
                    ordered = sorted(members)
                    leader = ordered[0]
                    buckets[root] = leader
                    for i in ordered[1:]:
                        if not self._merge_pair(k, leader, i, result, record_steps):
                            return
                continue
            lhs_idx = self._lhs_idx[k]
            for i in range(len(tableau)):
                if is_retracted(i):
                    continue
                row = tableau.raw_row(i)
                key = tuple(find(row[j]) for j in lhs_idx)
                leader = buckets.get(key)
                if leader is None:
                    buckets[key] = i
                    continue
                if not self._merge_pair(k, leader, i, result, record_steps):
                    return

    # -- incremental passes ----------------------------------------------------

    def process_dirty(
        self,
        dirty: Dict[int, Optional[Set[int]]],
        result: ChaseResult,
        record_steps: bool = False,
    ) -> None:
        """Re-examine only the dirty rows, and only under the FDs whose
        lhs mentions a changed column.

        Bucket entries are validated on read: a leader must still be a
        live row holding the looked-up key.  Before retraction existed
        this was a tautology (classes never shrank, so roots were never
        recycled), but a dissolution revives old roots as new singleton
        classes — a stale leader under a revived key must be swept
        aside, and every row that can legitimately hold the revived key
        is in the dirty worklist, so replacing the entry loses nothing.
        """
        tableau = self.tableau
        find = tableau.symbols.find
        raw_row = tableau.raw_row
        is_retracted = tableau.is_retracted
        fds_by_col = self._fds_by_col
        n_fds = len(self.fds)
        empty: PyTuple[int, ...] = ()
        for i, cols in dirty.items():
            if is_retracted(i):
                continue
            if cols is None:
                affected: Iterable[int] = range(n_fds)
            elif len(cols) == 1:
                # the overwhelmingly common event: one column moved
                (c,) = cols
                affected = fds_by_col.get(c, empty)
            else:
                seen: Set[int] = set()
                merged: List[int] = []
                for c in cols:
                    for k in fds_by_col.get(c, empty):
                        if k not in seen:
                            seen.add(k)
                            merged.append(k)
                merged.sort()
                affected = merged
            if not affected:
                continue
            row = tableau.raw_row(i)
            for k in affected:
                rhs_cols = self._rhs_cols[k]
                if not rhs_cols:
                    continue
                single = self._single_col[k]
                buckets = self._buckets[k]
                if single is not None:
                    root = find(row[single])
                    members = self._value_index[single].get(root)
                    if members is None or len(members) < 2:
                        continue
                    leader = buckets.get(root)
                    if leader is not None and leader != i and (
                        is_retracted(leader)
                        or find(raw_row(leader)[single]) != root
                    ):
                        leader = None  # stale entry from a dissolved class
                    if leader is None or leader == i:
                        # First touch of this class under this FD, a
                        # stale leader just swept aside, or a dirty row
                        # re-acquiring a root it led before a
                        # dissolution (its self-entry says nothing
                        # about the rebuilt class): the bucket may hold
                        # rows this one has never been compared
                        # against.  Sweep the whole (snapshotted) class
                        # once, then lead it.  While the tableau only
                        # grows, a dirty row never re-finds itself as
                        # leader — a row is dirty in this column only
                        # when its class was absorbed, which changes
                        # its root — so the self-entry sweep costs
                        # nothing outside retraction.
                        buckets[root] = i
                        for m in sorted(members):
                            if m == i:
                                continue
                            if not self._merge_pair(k, i, m, result, record_steps):
                                return
                        continue
                    if not self._merge_pair(k, leader, i, result, record_steps):
                        return
                    continue
                lhs_idx = self._lhs_idx[k]
                key = tuple(find(row[j]) for j in lhs_idx)
                leader = buckets.get(key)
                if leader is not None and leader != i and (
                    is_retracted(leader)
                    or tuple(find(raw_row(leader)[j]) for j in lhs_idx) != key
                ):
                    leader = None  # stale entry from a dissolved class
                if leader is None:
                    buckets[key] = i
                    continue
                if leader == i:
                    continue
                if not self._merge_pair(k, leader, i, result, record_steps):
                    return


def _run_fd_fixpoint(
    tableau: ChaseTableau,
    chaser: _FDRuleIndex,
    result: ChaseResult,
    budget: _Budget,
    record_steps: bool = False,
    initial: bool = False,
) -> None:
    """Drive the FD-rule to fixpoint through the dirty worklist."""
    if initial:
        budget.tick()
        tableau.drain_dirty()
        chaser.process_all(result, record_steps=record_steps)
        if not result.consistent:
            return
    while True:
        dirty = tableau.drain_dirty()
        if not dirty:
            return
        budget.tick()
        chaser.process_dirty(dirty, result, record_steps=record_steps)
        if not result.consistent:
            return


def _bulk_module(tableau: ChaseTableau, bulk: Optional[bool]):
    """Resolve the ``bulk`` routing argument: the bulk module when the
    from-scratch kernel should run, else ``None``.  ``None`` (auto)
    requires structural eligibility *and* the size cutoff; ``True``
    forces the kernel (it raises on ineligible tableaux); ``False``
    pins the row-at-a-time path.  Imported lazily — the bulk module
    imports this one."""
    if bulk is False:
        return None
    from repro.chase import bulk as bulk_module

    if bulk is None and not bulk_module.bulk_eligible(tableau):
        return None
    return bulk_module


def chase_fds(
    tableau: ChaseTableau,
    fd_list: Iterable[FD],
    max_passes: int = DEFAULT_MAX_PASSES,
    record_steps: bool = False,
    bulk: Optional[bool] = None,
) -> ChaseResult:
    """Chase with the FD-rule only, to fixpoint (Honeyman's test).

    Fresh columnar tableaux above :data:`repro.chase.bulk.
    BULK_MIN_ROWS` rows are routed through the column-major bulk
    kernel (``bulk=None``, the auto default); pass ``bulk=False`` to
    pin the row-at-a-time engine (benchmark baselines) or ``bulk=True``
    to force the kernel regardless of size.  Both paths produce
    observationally identical tableaux.

    ``record_steps=True`` logs every merge so contradictions can be
    explained (:func:`explain_contradiction`).
    """
    fds = tuple(fd_list)
    bulk_module = _bulk_module(tableau, bulk)
    if bulk_module is not None:
        # a caller that enabled the merge log expects every merge
        # provenanced; the kernel batch-records on its behalf
        return bulk_module.chase_fds_bulk(
            tableau,
            fds,
            log_merges=tableau.merge_log_enabled,
            record_steps=record_steps,
        )
    result = ChaseResult(tableau=tableau, consistent=True)
    budget = _Budget(DEFAULT_MAX_ROWS, max_passes)
    chaser = _FDRuleIndex(tableau, fds)
    _run_fd_fixpoint(
        tableau, chaser, result, budget, record_steps=record_steps, initial=True
    )
    return result


class IncrementalFDChaser:
    """Persistent FD-chase driver for one tableau across many updates.

    :func:`chase_fds` builds its per-FD partitions, runs to fixpoint,
    and throws the partitions away.  A query service that appends rows
    one at a time would pay the full seeding pass again on every
    update.  This driver keeps the :class:`_FDRuleIndex` (and with it
    the tableau's value indexes) alive between calls:

    * the **first** :meth:`run` performs the full seeding pass and
      drives the fixpoint, exactly like :func:`chase_fds`;
    * every **later** :meth:`run` drives only the dirty-row worklist —
      rows appended via :meth:`~repro.chase.tableau.ChaseTableau.add_row`
      / ``add_padded`` or touched by merges since the previous call —
      so chasing one inserted tuple against an already-chased tableau
      costs the cascade it actually triggers, not a rescan;
    * :meth:`rechase_scoped` is the **delete-side** counterpart:
      retract one row (undoing exactly the unions that depended on it,
      via the tableau's merge log) and re-derive its footprint through
      the same dirty-row fixpoint — cost proportional to the affected
      set, not the tableau.

    The soundness argument is the engine's usual pair of invariants
    (bucket leaders are valid when read; any row whose key changed is
    dirty): appends preserve them because the index and the tableau
    share one union-find whose classes never shrink, and retraction
    preserves them because every row a dissolved class touched is
    re-seeded as dirty and stale bucket entries are swept on read
    (see :class:`_FDRuleIndex`).  The driver enables the tableau's
    merge log at construction, so a tableau chased here from birth is
    always retractable; pass ``log_merges=False`` to skip the log (and
    its per-union cost) when the tableau will never serve a retraction
    — :meth:`rechase_scoped` then reports the log incomplete.

    A contradiction **poisons** the tableau: merges up to the point of
    failure have already been applied, so the pair can no longer serve
    queries.  :attr:`poisoned` latches and every later :meth:`run`
    raises ``InconsistentStateError`` — rebuild a fresh tableau (and a
    fresh driver) from the underlying state instead.
    """

    __slots__ = ("tableau", "fds", "max_passes", "_index", "_seeded",
                 "_poisoned", "_log_merges")

    def __init__(
        self,
        tableau: ChaseTableau,
        fd_list: Iterable[FD],
        max_passes: int = DEFAULT_MAX_PASSES,
        log_merges: bool = True,
        _template: Optional[_RuleMetadata] = None,
        _handoff=None,
    ):
        self.tableau = tableau
        self.fds = tuple(fd_list)
        self.max_passes = max_passes
        self._log_merges = log_merges
        if log_merges:
            tableau.enable_merge_log()
        buckets = None
        seeded = False
        if _handoff is not None:
            # adopt a tableau the bulk kernel already chased: seed the
            # per-FD partitions from the kernel's buckets and skip the
            # full seeding pass — the tableau is at fixpoint, so the
            # first run() only has to drain rows appended since.  The
            # kernel must have run over this very tableau and FD list
            # (the bucket shapes are positional).
            if _handoff.tableau is not tableau:
                raise ValueError("bulk handoff is for a different tableau")
            if _handoff.fds != self.fds:
                raise ValueError("bulk handoff was chased under different FDs")
            buckets = _handoff.handoff_buckets()
            seeded = True
        self._index = _FDRuleIndex(
            tableau, self.fds, template=_template, buckets=buckets
        )
        self._seeded = seeded
        self._poisoned = False

    def metadata(self) -> _RuleMetadata:
        """The static per-FD column metadata, detached from the tableau
        — what a service should retain across invalidations to make
        later rebuilds cheap (retaining the driver itself would pin the
        dead tableau)."""
        return self._index.metadata()

    def rebound(self, tableau: ChaseTableau) -> "IncrementalFDChaser":
        """A fresh driver for a rebuilt tableau over the same universe.

        Reuses this driver's per-FD column metadata (the static part of
        its rule index) instead of re-deriving it per FD — the cheap
        path for services that rebuild shard or composer tableaus from
        their backing state.  The new driver is unseeded and unpoisoned
        regardless of this one's history.
        """
        return IncrementalFDChaser(
            tableau,
            self.fds,
            max_passes=self.max_passes,
            log_merges=self._log_merges,
            _template=self._index.metadata(),
        )

    @property
    def poisoned(self) -> bool:
        """True once a run hit a contradiction; the tableau holds
        partial merges and must be rebuilt."""
        return self._poisoned

    def run(self, record_steps: bool = False) -> ChaseResult:
        """Drive the FD-rule to fixpoint (full pass on the first call,
        dirty worklist only afterwards)."""
        if self._poisoned:
            raise InconsistentStateError(
                "tableau was poisoned by an earlier contradiction; "
                "rebuild it from the state before chasing again"
            )
        result = ChaseResult(tableau=self.tableau, consistent=True)
        budget = _Budget(DEFAULT_MAX_ROWS, self.max_passes)
        _run_fd_fixpoint(
            self.tableau,
            self._index,
            result,
            budget,
            record_steps=record_steps,
            initial=not self._seeded,
        )
        self._seeded = True
        if not result.consistent:
            self._poisoned = True
        return result

    def rechase_scoped(
        self,
        row: int,
        impact=None,
        record_steps: bool = False,
    ) -> ChaseResult:
        """Retract one tableau row and re-derive only its footprint.

        :meth:`~repro.chase.tableau.ChaseTableau.retract_row` dissolves
        the classes whose unions depended on the row and re-seeds the
        affected rows into the dirty worklist; this then drives the
        ordinary incremental fixpoint, so untouched partitions, value
        indexes, and occurrence entries stay live.  Pass a precomputed
        :class:`~repro.chase.tableau.RetractionImpact` to avoid
        recomputing it (the service sizes its rebuild fallback off the
        impact first).

        Retracting a tuple of a satisfying state leaves it satisfying
        and the rechase re-derives only unions the remaining rows
        justify, so a consistent tableau stays consistent — a
        contradiction here indicates the tableau was corrupted and is
        reported (and poisons the driver) exactly like :meth:`run`.
        """
        if self._poisoned:
            raise InconsistentStateError(
                "tableau was poisoned by an earlier contradiction; "
                "rebuild it from the state before retracting"
            )
        if not self._seeded:
            raise InconsistentStateError(
                "rechase_scoped needs a chased tableau: call run() first"
            )
        self.tableau.retract_row(row, impact)
        return self.run(record_steps=record_steps)


def explain_contradiction(result: ChaseResult) -> str:
    """A human-readable account of how the chase reached its
    contradiction (requires a run with ``record_steps=True``)."""
    if result.consistent:
        return "no contradiction: the state is satisfying"
    lines = ["chase steps leading to the contradiction:"]
    if not result.steps:
        lines.append("  (run the chase with record_steps=True for the full chain)")
    for step in result.steps:
        lines.append("  " + step.describe(result.tableau))
    if result.contradiction is not None:
        lines.append(f"CONTRADICTION: {result.contradiction}")
    return "\n".join(lines)


class _ProjectionCache:
    """Version-keyed cache of resolved projections for the JD-rule.

    All entries are valid exactly for one tableau version; the first
    access after the tableau changed resets the cache.  Binary-JD
    (MVD) chases hit the same component projections many times per
    pass, so sharing them across JDs is the main saving.
    """

    __slots__ = ("tableau", "_version", "_proj", "_existing")

    def __init__(self, tableau: ChaseTableau):
        self.tableau = tableau
        self._version: Optional[PyTuple[int, int]] = None
        self._proj: Dict[PyTuple[str, ...], Set[PyTuple[int, ...]]] = {}
        self._existing: Optional[Set[PyTuple[int, ...]]] = None

    def _sync(self) -> None:
        v = self.tableau.version
        if v != self._version:
            self._version = v
            self._proj = {}
            self._existing = None

    def _live_resolved(self) -> List[PyTuple[int, ...]]:
        """Resolved rows minus retracted slots (retracted rows must not
        feed the JD-rule's joins or its duplicate check)."""
        tableau = self.tableau
        resolved = tableau.resolved_rows()
        if tableau.live_row_count() == len(resolved):
            return resolved
        is_retracted = tableau.is_retracted
        return [row for i, row in enumerate(resolved) if not is_retracted(i)]

    def existing_rows(self) -> Set[PyTuple[int, ...]]:
        """The set of resolved full rows (JD-rule duplicate check)."""
        self._sync()
        if self._existing is None:
            self._existing = set(self._live_resolved())
        return self._existing

    def projection(self, attrs: PyTuple[str, ...]) -> Set[PyTuple[int, ...]]:
        """Distinct resolved rows projected on the given columns.

        Resolves only the *requested* columns, straight off the raw
        rows — a projection over two attributes of a wide universe
        used to pay for resolving every column of every live row
        (via ``resolved_rows``) before throwing most of it away.
        ``existing_rows`` still wants the full-width resolution and
        keeps the memoized path.
        """
        self._sync()
        cached = self._proj.get(attrs)
        if cached is None:
            tableau = self.tableau
            idx = [tableau.column_index(a) for a in attrs]
            find = tableau.symbols.find
            raw_row = tableau.raw_row
            if tableau.live_row_count() == len(tableau):
                live: Iterable[int] = range(len(tableau))
            else:
                is_retracted = tableau.is_retracted
                live = (
                    i for i in range(len(tableau)) if not is_retracted(i)
                )
            cached = {
                tuple(find(raw_row(i)[j]) for j in idx) for i in live
            }
            self._proj[attrs] = cached
        return cached


def _apply_jd_rule(
    tableau: ChaseTableau,
    jd: JoinDependency,
    budget: _Budget,
    result: ChaseResult,
    projections: _ProjectionCache,
) -> bool:
    """Close the tableau under one application round of the JD-rule.

    Joins the per-component projections incrementally (hash join) from
    the version-keyed projection cache and adds every row not already
    present.  Returns True when new rows were added.
    """
    cols = tableau.columns
    if jd.universe != tableau.universe:
        raise ValueError(
            f"JD over {jd.universe} cannot be chased on a tableau over "
            f"{tableau.universe}"
        )
    existing = projections.existing_rows()

    components = list(jd.components)
    # Join the per-component projections incrementally (hash join),
    # keeping the attribute order of the universe throughout.
    sofar_attrs: List[str] = [a for a in cols if a in components[0]]
    sofar: Set[PyTuple[int, ...]] = projections.projection(tuple(sofar_attrs))
    for comp in components[1:]:
        comp_attrs = [a for a in cols if a in comp]
        comp_rows = projections.projection(tuple(comp_attrs))
        common = [a for a in sofar_attrs if a in comp]
        comp_pos = {a: k for k, a in enumerate(comp_attrs)}
        index: Dict[PyTuple[int, ...], List[PyTuple[int, ...]]] = {}
        for crow in comp_rows:
            key = tuple(crow[comp_pos[a]] for a in common)
            index.setdefault(key, []).append(crow)
        sofar_pos = {a: k for k, a in enumerate(sofar_attrs)}
        extra_attrs = [a for a in comp_attrs if a not in sofar_pos]
        joined: Set[PyTuple[int, ...]] = set()
        for prow in sofar:
            key = tuple(prow[sofar_pos[a]] for a in common)
            for crow in index.get(key, ()):
                joined.add(prow + tuple(crow[comp_pos[a]] for a in extra_attrs))
            budget.check_rows(len(joined))
        sofar = joined
        sofar_attrs = sofar_attrs + extra_attrs
        if not sofar:
            return False

    # Components cover the universe, but the incremental order may have
    # permuted the columns; restore universe order before comparing.
    pos = {a: k for k, a in enumerate(sofar_attrs)}
    order = [pos[a] for a in cols]
    added = False
    new_rows = []
    for prow in sofar:
        full = tuple(prow[k] for k in order)
        if full in existing:
            continue
        new_rows.append(full)
        added = True
        budget.check_rows(len(existing) + len(new_rows))
    # Adding rows invalidates the cache `existing` came from, so defer
    # mutation until membership testing is over.
    for full in new_rows:
        tableau.add_row(full, RowOrigin("jd", detail=str(jd)))
    if added:
        result.jd_rows_added += 1
    return added


def chase(
    tableau: ChaseTableau,
    fd_list: Iterable[FD] = (),
    jds: Iterable[JoinDependency] = (),
    mvds: Iterable[MVD] = (),
    max_rows: int = DEFAULT_MAX_ROWS,
    max_passes: int = DEFAULT_MAX_PASSES,
    bulk: Optional[bool] = None,
) -> ChaseResult:
    """The full chase: FD-rule to fixpoint, then JD/MVD rules, repeated
    until nothing changes or a contradiction surfaces.

    The *initial* FD fixpoint of an eligible fresh tableau runs on the
    bulk kernel (same routing as :func:`chase_fds`); the incremental
    index that drives the post-JD FD fixpoints is then seeded from the
    kernel's partitions instead of a full re-scan.

    Each JD remembers the tableau version it last ran against and is
    skipped while the tableau is unchanged — a fixpoint round over n
    JDs that adds nothing costs n version comparisons, not n joins.
    """
    fds = tuple(fd_list)
    all_jds: List[JoinDependency] = list(jds)
    for m in mvds:
        all_jds.append(m.as_jd())
    result = ChaseResult(tableau=tableau, consistent=True)
    budget = _Budget(max_rows, max_passes)
    projections = _ProjectionCache(tableau)
    jd_seen: Dict[int, PyTuple[int, int]] = {}

    bulk_module = _bulk_module(tableau, bulk)
    if bulk_module is not None:
        kernel = bulk_module.BulkFDChaser(
            tableau, fds, log_merges=tableau.merge_log_enabled
        )
        bulk_result = kernel.run()
        result.fd_merges += bulk_result.fd_merges
        if not bulk_result.consistent:
            result.consistent = False
            result.contradiction = bulk_result.contradiction
            return result
        if not all_jds:
            return result
        chaser = _FDRuleIndex(tableau, fds, buckets=kernel.handoff_buckets())
    else:
        chaser = _FDRuleIndex(tableau, fds)
        _run_fd_fixpoint(tableau, chaser, result, budget, initial=True)
        if not result.consistent:
            return result

    while True:
        grew = False
        for k, jd in enumerate(all_jds):
            if jd_seen.get(k) == tableau.version:
                continue
            budget.tick()
            if _apply_jd_rule(tableau, jd, budget, result, projections):
                grew = True
                # Re-close under the FDs right away: merging only ever
                # shrinks the joins the remaining JDs are about to see.
                _run_fd_fixpoint(tableau, chaser, result, budget)
                if not result.consistent:
                    return result
            else:
                # Only a no-op application proves this JD is at fixpoint
                # for the current version; after adding rows it must run
                # again once every other rule has caught up.
                jd_seen[k] = tableau.version
        if not grew:
            return result


def chase_state(
    state,
    fd_list: Iterable[FD] = (),
    jds: Iterable[JoinDependency] = (),
    mvds: Iterable[MVD] = (),
    **kwargs,
) -> ChaseResult:
    """Convenience: build ``I(p)`` from a state and chase it."""
    tableau = ChaseTableau.from_state(state)
    return chase(tableau, fd_list=fd_list, jds=jds, mvds=mvds, **kwargs)
