"""The chase procedure of [MMS] (Section 2 of the paper).

Two rules operate on a :class:`~repro.chase.tableau.ChaseTableau`:

* **FD-rule** — for ``X → Y`` and two rows agreeing on ``X`` but
  disagreeing on ``B ∈ Y``: merge the two ``B``-symbols (replacing a
  variable by the other symbol everywhere).  Merging two distinct
  *constants* is a contradiction: the chased state is unsatisfiable.
* **JD-rule** — for ``*{S1,…,Sn}``: any universal tuple whose
  ``Si``-projection matches an existing row for every ``i`` is added
  (i.e. the tableau is closed under the join of its projections).

``chase`` alternates the FD-closure and the JD-rule until a fixpoint or
a contradiction.  MVDs are chased through their equivalent binary JDs.

The engine records a structured trace and enforces a step/row budget so
pathological cyclic cases fail loudly (:class:`ChaseBudgetExceeded`)
instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.chase.tableau import ChaseTableau, RowOrigin
from repro.deps.fd import FD
from repro.deps.jd import JoinDependency
from repro.deps.mvd import MVD
from repro.exceptions import ChaseBudgetExceeded
from repro.schema.attributes import AttributeSet

DEFAULT_MAX_ROWS = 100_000
DEFAULT_MAX_PASSES = 10_000


@dataclass(frozen=True)
class Contradiction:
    """Witness of a chase contradiction: the FD whose application tried
    to equate two distinct constants."""

    fd: FD
    attribute: str
    values: PyTuple[Any, Any]
    row_a: int
    row_b: int

    def __str__(self) -> str:
        va, vb = self.values
        return (
            f"FD {self.fd} forces {self.attribute} to be both "
            f"{va!r} and {vb!r} (rows {self.row_a}, {self.row_b})"
        )


@dataclass(frozen=True)
class ChaseStep:
    """One recorded FD-rule application (``record_steps=True``)."""

    fd: FD
    attribute: str
    row_a: int
    row_b: int

    def describe(self, tableau: ChaseTableau) -> str:
        oa, ob = tableau.origin(self.row_a), tableau.origin(self.row_b)
        where_a = oa.scheme or oa.kind
        where_b = ob.scheme or ob.kind
        return (
            f"{self.fd} equated {self.attribute} between rows "
            f"{self.row_a} ({where_a}) and {self.row_b} ({where_b})"
        )


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    tableau: ChaseTableau
    consistent: bool
    contradiction: Optional[Contradiction] = None
    steps: List[ChaseStep] = field(default_factory=list)
    fd_merges: int = 0
    jd_rows_added: int = 0

    def __bool__(self) -> bool:
        return self.consistent


class _Budget:
    __slots__ = ("max_rows", "max_passes", "passes")

    def __init__(self, max_rows: int, max_passes: int):
        self.max_rows = max_rows
        self.max_passes = max_passes
        self.passes = 0

    def tick(self) -> None:
        self.passes += 1
        if self.passes > self.max_passes:
            raise ChaseBudgetExceeded(
                f"chase exceeded {self.max_passes} passes; "
                "raise max_passes if this input is genuinely this large"
            )

    def check_rows(self, n: int) -> None:
        if n > self.max_rows:
            raise ChaseBudgetExceeded(
                f"chase tableau exceeded {self.max_rows} rows; "
                "raise max_rows if this input is genuinely this large"
            )


def _chase_fds_once(
    tableau: ChaseTableau,
    fd_list: Sequence[FD],
    result: ChaseResult,
    record_steps: bool = False,
) -> bool:
    """One full pass of the FD-rule over all FDs.  Returns True when any
    merge happened; sets the contradiction on ``result`` if found."""
    symbols = tableau.symbols
    changed = False
    for f in fd_list:
        lhs_idx = [tableau.column_index(a) for a in f.lhs]
        rhs_cols = [(a, tableau.column_index(a)) for a in f.effective_rhs]
        if not rhs_cols:
            continue
        buckets: Dict[PyTuple[int, ...], int] = {}
        for i in range(len(tableau)):
            row = tableau.raw_row(i)
            key = tuple(symbols.find(row[j]) for j in lhs_idx)
            leader = buckets.get(key)
            if leader is None:
                buckets[key] = i
                continue
            lead_row = tableau.raw_row(leader)
            for attr, j in rhs_cols:
                merged, conflict = symbols.merge(lead_row[j], row[j])
                if conflict is not None:
                    result.consistent = False
                    result.contradiction = Contradiction(
                        fd=f, attribute=attr, values=conflict, row_a=leader, row_b=i
                    )
                    if record_steps:
                        result.steps.append(
                            ChaseStep(fd=f, attribute=attr, row_a=leader, row_b=i)
                        )
                    return changed
                if merged:
                    changed = True
                    result.fd_merges += 1
                    if record_steps:
                        result.steps.append(
                            ChaseStep(fd=f, attribute=attr, row_a=leader, row_b=i)
                        )
    return changed


def chase_fds(
    tableau: ChaseTableau,
    fd_list: Iterable[FD],
    max_passes: int = DEFAULT_MAX_PASSES,
    record_steps: bool = False,
) -> ChaseResult:
    """Chase with the FD-rule only, to fixpoint (Honeyman's test).

    ``record_steps=True`` logs every merge so contradictions can be
    explained (:func:`explain_contradiction`).
    """
    fds = tuple(fd_list)
    result = ChaseResult(tableau=tableau, consistent=True)
    budget = _Budget(DEFAULT_MAX_ROWS, max_passes)
    while True:
        budget.tick()
        changed = _chase_fds_once(tableau, fds, result, record_steps=record_steps)
        if not result.consistent or not changed:
            break
    return result


def explain_contradiction(result: ChaseResult) -> str:
    """A human-readable account of how the chase reached its
    contradiction (requires a run with ``record_steps=True``)."""
    if result.consistent:
        return "no contradiction: the state is satisfying"
    lines = ["chase steps leading to the contradiction:"]
    if not result.steps:
        lines.append("  (run the chase with record_steps=True for the full chain)")
    for step in result.steps:
        lines.append("  " + step.describe(result.tableau))
    if result.contradiction is not None:
        lines.append(f"CONTRADICTION: {result.contradiction}")
    return "\n".join(lines)


def _apply_jd_rule(
    tableau: ChaseTableau, jd: JoinDependency, budget: _Budget, result: ChaseResult
) -> bool:
    """Close the tableau under one application round of the JD-rule.

    Computes the natural join of the per-component projections of the
    current rows and adds every row not already present.  Returns True
    when new rows were added.
    """
    cols = tableau.columns
    if jd.universe != tableau.universe:
        raise ValueError(
            f"JD over {jd.universe} cannot be chased on a tableau over "
            f"{tableau.universe}"
        )
    resolved = tableau.resolved_rows()
    existing = set(resolved)

    components = list(jd.components)
    # Join the per-component projections incrementally (hash join),
    # keeping the attribute order of the universe throughout.
    sofar_attrs: List[str] = [a for a in cols if a in components[0]]
    sofar: set = {
        tuple(row[tableau.column_index(a)] for a in sofar_attrs) for row in resolved
    }
    for comp in components[1:]:
        comp_attrs = [a for a in cols if a in comp]
        comp_rows = {
            tuple(row[tableau.column_index(a)] for a in comp_attrs) for row in resolved
        }
        common = [a for a in sofar_attrs if a in comp]
        comp_pos = {a: k for k, a in enumerate(comp_attrs)}
        index: Dict[PyTuple[int, ...], List[PyTuple[int, ...]]] = {}
        for crow in comp_rows:
            key = tuple(crow[comp_pos[a]] for a in common)
            index.setdefault(key, []).append(crow)
        sofar_pos = {a: k for k, a in enumerate(sofar_attrs)}
        extra_attrs = [a for a in comp_attrs if a not in sofar_pos]
        joined: set = set()
        for prow in sofar:
            key = tuple(prow[sofar_pos[a]] for a in common)
            for crow in index.get(key, ()):
                joined.add(prow + tuple(crow[comp_pos[a]] for a in extra_attrs))
            budget.check_rows(len(joined))
        sofar = joined
        sofar_attrs = sofar_attrs + extra_attrs
        if not sofar:
            return False

    # Components cover the universe, but the incremental order may have
    # permuted the columns; restore universe order before comparing.
    pos = {a: k for k, a in enumerate(sofar_attrs)}
    order = [pos[a] for a in cols]
    added = False
    for prow in sofar:
        full = tuple(prow[k] for k in order)
        if full in existing:
            continue
        tableau.add_row(full, RowOrigin("jd", detail=str(jd)))
        existing.add(full)
        added = True
        budget.check_rows(len(existing))
    if added:
        result.jd_rows_added += 1
    return added


def chase(
    tableau: ChaseTableau,
    fd_list: Iterable[FD] = (),
    jds: Iterable[JoinDependency] = (),
    mvds: Iterable[MVD] = (),
    max_rows: int = DEFAULT_MAX_ROWS,
    max_passes: int = DEFAULT_MAX_PASSES,
) -> ChaseResult:
    """The full chase: FD-rule to fixpoint, then JD/MVD rules, repeated
    until nothing changes or a contradiction surfaces."""
    fds = tuple(fd_list)
    all_jds: List[JoinDependency] = list(jds)
    for m in mvds:
        all_jds.append(m.as_jd())
    result = ChaseResult(tableau=tableau, consistent=True)
    budget = _Budget(max_rows, max_passes)

    while True:
        # FD closure first: it only merges, never grows the tableau.
        while True:
            budget.tick()
            changed = _chase_fds_once(tableau, fds, result)
            if not result.consistent:
                return result
            if not changed:
                break
        grew = False
        for jd in all_jds:
            budget.tick()
            if _apply_jd_rule(tableau, jd, budget, result):
                grew = True
        if not grew:
            return result


def chase_state(
    state,
    fd_list: Iterable[FD] = (),
    jds: Iterable[JoinDependency] = (),
    mvds: Iterable[MVD] = (),
    **kwargs,
) -> ChaseResult:
    """Convenience: build ``I(p)`` from a state and chase it."""
    tableau = ChaseTableau.from_state(state)
    return chase(tableau, fd_list=fd_list, jds=jds, mvds=mvds, **kwargs)
