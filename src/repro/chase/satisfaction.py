"""Satisfaction of dependencies by database states (Section 2).

A state ``p`` *satisfies* ``Σ`` when a **weak instance** exists: a
universal instance containing every stored tuple (under projection)
and satisfying ``Σ``.  The chase of ``I(p)`` decides this.

Fast path (Lemma 4 + [H]): when every FD of ``F`` is embedded in the
schema, the join dependency ``*D`` is free — a state satisfies
``F ∪ {*D}`` iff it satisfies ``F``, and the FD-only chase (polynomial)
decides it.  For non-embedded FDs the full chase with the JD-rule runs
(this is the semantics oracle; the paper shows the general problem is
coNP-hard, Theorem 1 / [Y]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple as PyTuple

from repro.chase.engine import ChaseResult, chase, chase_fds
from repro.chase.tableau import ChaseTableau
from repro.data.relations import RelationInstance
from repro.data.states import DatabaseState
from repro.deps.fd import FD
from repro.deps.fdset import as_fdset
from repro.exceptions import InconsistentStateError
from repro.schema.database import DatabaseSchema


@dataclass(frozen=True)
class SatisfactionResult:
    """Outcome of a satisfaction test."""

    satisfies: bool
    chase_result: ChaseResult
    used_jd_rule: bool

    def weak_instance(self) -> RelationInstance:
        if not self.satisfies:
            raise InconsistentStateError(
                f"no weak instance: {self.chase_result.contradiction}"
            )
        return self.chase_result.tableau.to_relation()


def _all_embedded(fd_list: Iterable[FD], schema: DatabaseSchema) -> bool:
    return all(
        any(f.embedded_in(s.attributes) for s in schema) for f in fd_list
    )


def satisfies(
    state: DatabaseState,
    fd_list: Iterable[FD],
    with_schema_jd: bool = True,
    force_full_chase: bool = False,
    **chase_kwargs,
) -> SatisfactionResult:
    """Does the state satisfy ``F ∪ {*D}`` (or ``F`` alone)?

    ``with_schema_jd=False`` tests satisfaction of the FDs only.
    ``force_full_chase=True`` disables the Lemma 4 fast path (useful to
    cross-validate the fast path against the full semantics).
    """
    fds = tuple(as_fdset(fd_list))
    schema = state.schema
    need_jd = with_schema_jd and (
        force_full_chase or not _all_embedded(fds, schema)
    )
    tableau = ChaseTableau.from_state(state)
    if need_jd:
        result = chase(tableau, fd_list=fds, jds=[schema.join_dependency()], **chase_kwargs)
    else:
        result = chase_fds(tableau, fds)
    return SatisfactionResult(
        satisfies=result.consistent, chase_result=result, used_jd_rule=need_jd
    )


def weak_instance(
    state: DatabaseState, fd_list: Iterable[FD], **kwargs
) -> RelationInstance:
    """The weak instance produced by a successful chase (raises
    :class:`InconsistentStateError` otherwise)."""
    return satisfies(state, fd_list, **kwargs).weak_instance()


def single_relation_state(state: DatabaseState, scheme_name: str) -> DatabaseState:
    """The state ``{∅, …, ri, …, ∅}`` used to define local satisfaction."""
    return DatabaseState(state.schema, {scheme_name: state[scheme_name]})


def locally_satisfies(
    state: DatabaseState,
    fd_list: Iterable[FD],
    with_schema_jd: bool = True,
    force_full_chase: bool = False,
) -> Dict[str, SatisfactionResult]:
    """Local satisfaction per the paper: ``ri`` satisfies ``Σi`` iff the
    state holding only ``ri`` satisfies ``Σ``.  Returns one result per
    scheme name."""
    out: Dict[str, SatisfactionResult] = {}
    for scheme in state.schema:
        solo = single_relation_state(state, scheme.name)
        out[scheme.name] = satisfies(
            solo, fd_list, with_schema_jd=with_schema_jd, force_full_chase=force_full_chase
        )
    return out


def is_locally_satisfying(
    state: DatabaseState, fd_list: Iterable[FD], **kwargs
) -> bool:
    """Is the state in ``LSAT(D, Σ)``?"""
    return all(r.satisfies for r in locally_satisfies(state, fd_list, **kwargs).values())


def is_globally_satisfying(
    state: DatabaseState, fd_list: Iterable[FD], **kwargs
) -> bool:
    """Is the state in ``WSAT(D, Σ)``?"""
    return satisfies(state, fd_list, **kwargs).satisfies


def lsat_but_not_wsat(
    state: DatabaseState, fd_list: Iterable[FD], **kwargs
) -> bool:
    """The independence-violating pattern: locally satisfying yet not
    satisfying.  Used to verify counterexample states."""
    return is_locally_satisfying(state, fd_list, **kwargs) and not is_globally_satisfying(
        state, fd_list, **kwargs
    )
