"""The chase procedure: tableaux, rules, satisfaction testing.

Two engines live here: the indexed incremental engine
(:mod:`repro.chase.engine`, the default) and the naive reference
engine (:mod:`repro.chase.reference`) it is validated and benchmarked
against.
"""

from repro.chase.bulk import BULK_MIN_ROWS, BulkFDChaser, chase_fds_bulk
from repro.chase.engine import (
    ChaseResult,
    ChaseStep,
    Contradiction,
    IncrementalFDChaser,
    chase,
    chase_fds,
    chase_state,
    explain_contradiction,
)
from repro.chase.reference import chase_fds_naive, chase_naive
from repro.chase.satisfaction import (
    SatisfactionResult,
    is_globally_satisfying,
    is_locally_satisfying,
    locally_satisfies,
    lsat_but_not_wsat,
    satisfies,
    single_relation_state,
    weak_instance,
)
from repro.chase.tableau import (
    BulkIngest,
    ChaseTableau,
    MergeEvent,
    RetractionImpact,
    RowOrigin,
    SymbolTable,
)

__all__ = [
    "BULK_MIN_ROWS",
    "BulkFDChaser",
    "BulkIngest",
    "chase_fds_bulk",
    "ChaseTableau",
    "SymbolTable",
    "RowOrigin",
    "MergeEvent",
    "RetractionImpact",
    "ChaseResult",
    "ChaseStep",
    "Contradiction",
    "IncrementalFDChaser",
    "chase",
    "chase_fds",
    "chase_state",
    "chase_naive",
    "chase_fds_naive",
    "explain_contradiction",
    "SatisfactionResult",
    "satisfies",
    "weak_instance",
    "locally_satisfies",
    "single_relation_state",
    "is_locally_satisfying",
    "is_globally_satisfying",
    "lsat_but_not_wsat",
]
