"""Small shared utilities."""

from repro.util.unionfind import UnionFind

__all__ = ["UnionFind"]
