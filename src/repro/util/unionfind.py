"""A small union-find (disjoint-set) structure.

Used by the chase engine (merging symbolic values) and by the join-tree
construction (Kruskal's algorithm).  Supports arbitrary hashable items,
path compression, and union by size.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class UnionFind:
    """Disjoint sets over arbitrary hashable items."""

    __slots__ = ("_parent", "_size")

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def find(self, item: Hashable) -> Hashable:
        """Representative of the item's set (adds the item if new)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the two sets; returns the surviving representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[Hashable]]:
        """All current sets (deterministic order not guaranteed)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)
