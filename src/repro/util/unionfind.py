"""Union-find (disjoint-set) structures.

:class:`UnionFind` supports arbitrary hashable items (join-tree
construction, Kruskal's algorithm); :class:`IntUnionFind` is the
array-backed variant for densely numbered items — the chase's symbol
classes, where ``find`` is the single hottest operation of the whole
library.  Both use path compression and union by size.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class UnionFind:
    """Disjoint sets over arbitrary hashable items."""

    __slots__ = ("_parent", "_size")

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def find(self, item: Hashable) -> Hashable:
        """Representative of the item's set (adds the item if new)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the two sets; returns the surviving representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[Hashable]]:
        """All current sets (deterministic order not guaranteed)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)


class IntUnionFind:
    """Disjoint sets over the integers ``0 … n-1``, array-backed.

    Items must be allocated densely through :meth:`add_next` (or
    :meth:`ensure`); list indexing replaces the generic structure's
    per-step dict lookups, which is what makes the chase's
    resolve-heavy inner loops affordable.
    """

    __slots__ = ("_parent", "_size")

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []

    def add_next(self) -> int:
        """Allocate the next integer as a fresh singleton set."""
        item = len(self._parent)
        self._parent.append(item)
        self._size.append(1)
        return item

    def ensure(self, item: int) -> None:
        """Make sure ``0 … item`` all exist."""
        while len(self._parent) <= item:
            self.add_next()

    def find(self, item: int) -> int:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the two sets; returns the surviving representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        size = self._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        size[ra] += size[rb]
        return ra

    def reset_singletons(self, items: Iterable[int]) -> None:
        """Detach each item into its own singleton set.

        This is the primitive behind chase-tableau class dissolution
        (:meth:`repro.chase.tableau.ChaseTableau.retract_row`): the
        caller must pass **every** member of each set it means to break
        up, otherwise items left out keep pointing at a parent that is
        no longer their representative.
        """
        parent = self._parent
        size = self._size
        for item in items:
            parent[item] = item
            size[item] = 1

    def __len__(self) -> int:
        return len(self._parent)
